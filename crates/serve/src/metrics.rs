//! Serving metrics on the unified [`bnff_obs`] registry: lock-free
//! counters, gauges and latency histograms with both the legacy JSON
//! [`ServeReport`] and Prometheus text exposition.
//!
//! The engine records through [`ServeMetrics`] — typed handles into one
//! [`Registry`] — so every observation is a relaxed atomic; no request
//! ever takes a metrics lock (the registry mutex is touched only at
//! registration and scrape time). Readers take a [`MetricsSnapshot`],
//! which carries the same read API the old per-worker recorder exposed
//! (`requests()`, `percentile_ms(..)`, `report(..)`) so existing
//! consumers keep working, now backed by log-bucketed histograms with
//! ≤ 6.25% relative quantile error instead of unbounded latency vectors.

use bnff_obs::{Counter, Gauge, Histogram, HistogramOpts, HistogramSnapshot, Registry};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Lock-free recording handles for the serving engine, all registered on
/// one shared [`Registry`] (which also renders the Prometheus scrape).
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    registry: Arc<Registry>,
    requests: Arc<Counter>,
    batches: Arc<Counter>,
    batch_samples: Arc<Counter>,
    stolen: Arc<Counter>,
    shed: Arc<Counter>,
    expired: Arc<Counter>,
    latency: Arc<Histogram>,
    queue_wait: Arc<Histogram>,
    infer: Arc<Histogram>,
    queue_depth: Arc<Histogram>,
    queued: Arc<Gauge>,
    cache_peak: Arc<Gauge>,
    batch_capacity: Arc<Gauge>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// Fresh metrics on a fresh registry.
    pub fn new() -> Self {
        let registry = Arc::new(Registry::new());
        ServeMetrics {
            requests: registry.counter("bnff_requests_total", "Requests served to completion."),
            batches: registry.counter("bnff_batches_total", "Coalesced batches executed."),
            batch_samples: registry
                .counter("bnff_batch_samples_total", "Samples across all executed batches."),
            stolen: registry.counter(
                "bnff_stolen_batches_total",
                "Batches a worker assembled by stealing from a sibling shard.",
            ),
            shed: registry.counter(
                "bnff_shed_total",
                "Requests shed by admission control (every shard queue full).",
            ),
            expired: registry.counter(
                "bnff_expired_total",
                "Requests expired in the queue past the configured deadline.",
            ),
            latency: registry.histogram(
                "bnff_request_latency_seconds",
                "End-to-end request latency, enqueue to completion.",
                HistogramOpts::latency_ns(),
            ),
            queue_wait: registry.histogram(
                "bnff_queue_wait_seconds",
                "Time requests waited in a shard queue before batch assembly.",
                HistogramOpts::latency_ns(),
            ),
            infer: registry.histogram(
                "bnff_infer_seconds",
                "Forward-pass time of the batch each request rode in.",
                HistogramOpts::latency_ns(),
            ),
            queue_depth: registry.histogram(
                "bnff_queue_depth",
                "Shard queue depth sampled when a worker takes a batch.",
                HistogramOpts::small_counts(),
            ),
            queued: registry.gauge("bnff_queued", "Requests currently queued across all shards."),
            cache_peak: registry.gauge(
                "bnff_executor_cache_peak",
                "Peak batch-size-specialized executors cached by any worker.",
            ),
            batch_capacity: registry
                .gauge("bnff_batch_capacity", "Configured max_batch (occupancy denominator)."),
            registry,
        }
    }

    /// The registry behind the handles (for Prometheus exposition and for
    /// registering adjacent metrics on the same scrape).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Renders the Prometheus text exposition of everything registered.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Records one served request's end-to-end latency.
    #[inline]
    pub fn record_request(&self, latency: Duration) {
        self.requests.inc();
        self.latency.record(latency.as_nanos() as u64);
    }

    /// Records how long one request waited in its shard queue.
    #[inline]
    pub fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait.record(wait.as_nanos() as u64);
    }

    /// Records the forward-pass time of one executed batch.
    #[inline]
    pub fn record_infer(&self, infer: Duration) {
        self.infer.record(infer.as_nanos() as u64);
    }

    /// Records one executed batch of `size` coalesced requests.
    #[inline]
    pub fn record_batch(&self, size: usize) {
        self.batches.inc();
        self.batch_samples.add(size as u64);
    }

    /// Records one observation of a shard queue's depth.
    #[inline]
    pub fn record_queue_depth(&self, depth: usize) {
        self.queue_depth.record(depth as u64);
    }

    /// Records a worker's executor-cache size (the gauge keeps the peak).
    #[inline]
    pub fn record_executor_cache(&self, size: usize) {
        self.cache_peak.set_max(size as i64);
    }

    /// Counts `n` requests shed by admission control.
    #[inline]
    pub fn record_shed(&self, n: usize) {
        self.shed.add(n as u64);
    }

    /// Counts `n` requests expired past their queueing deadline.
    #[inline]
    pub fn record_expired(&self, n: usize) {
        self.expired.add(n as u64);
    }

    /// Counts one batch assembled by work-stealing.
    #[inline]
    pub fn record_stolen_batch(&self) {
        self.stolen.inc();
    }

    /// Sets the batch capacity (`max_batch`) occupancy is reported against.
    pub fn set_batch_capacity(&self, capacity: usize) {
        self.batch_capacity.set_max(capacity as i64);
    }

    /// Adjusts the queued-requests gauge at admission (`+n`) / take (`-n`).
    #[inline]
    pub fn add_queued(&self, n: i64) {
        self.queued.add(n);
    }

    /// Requests currently queued (the `Overloaded` error reports this).
    pub fn queued(&self) -> usize {
        self.queued.get().max(0) as usize
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.get(),
            batches: self.batches.get(),
            batch_samples: self.batch_samples.get(),
            stolen: self.stolen.get(),
            shed: self.shed.get(),
            expired: self.expired.get(),
            batch_capacity: self.batch_capacity.get().max(0) as usize,
            executor_cache_peak: self.cache_peak.get().max(0) as usize,
            latency: self.latency.snapshot(),
            queue_wait: self.queue_wait.snapshot(),
            infer: self.infer.snapshot(),
            queue_depth: self.queue_depth.snapshot(),
        }
    }
}

/// A point-in-time copy of the serving metrics, with the derived-statistic
/// read API (`percentile_ms`, occupancy means) and [`ServeReport`] folding.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    requests: u64,
    batches: u64,
    batch_samples: u64,
    stolen: u64,
    shed: u64,
    expired: u64,
    batch_capacity: usize,
    executor_cache_peak: usize,
    latency: HistogramSnapshot,
    queue_wait: HistogramSnapshot,
    infer: HistogramSnapshot,
    queue_depth: HistogramSnapshot,
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot::empty()
    }
}

impl MetricsSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> Self {
        MetricsSnapshot {
            requests: 0,
            batches: 0,
            batch_samples: 0,
            stolen: 0,
            shed: 0,
            expired: 0,
            batch_capacity: 0,
            executor_cache_peak: 0,
            latency: HistogramSnapshot::empty(),
            queue_wait: HistogramSnapshot::empty(),
            infer: HistogramSnapshot::empty(),
            queue_depth: HistogramSnapshot::empty(),
        }
    }

    /// Requests served to completion.
    pub fn requests(&self) -> usize {
        self.requests as usize
    }

    /// Batches executed.
    pub fn batches(&self) -> usize {
        self.batches as usize
    }

    /// Requests shed by admission control.
    pub fn shed(&self) -> usize {
        self.shed as usize
    }

    /// Requests expired past their queueing deadline.
    pub fn expired(&self) -> usize {
        self.expired as usize
    }

    /// Batches assembled by work-stealing from a sibling shard.
    pub fn stolen_batches(&self) -> usize {
        self.stolen as usize
    }

    /// Mean samples per executed batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batch_samples as f64 / self.batches as f64
        }
    }

    /// Mean fraction of `max_batch` each executed batch filled (`0..=1`).
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batch_capacity == 0 {
            0.0
        } else {
            self.mean_batch_size() / self.batch_capacity as f64
        }
    }

    /// Mean sampled shard-queue depth.
    pub fn mean_queue_depth(&self) -> f64 {
        self.queue_depth.mean()
    }

    /// Largest sampled shard-queue depth.
    pub fn max_queue_depth(&self) -> usize {
        self.queue_depth.max() as usize
    }

    /// Peak per-worker executor-cache size observed.
    pub fn executor_cache_peak(&self) -> usize {
        self.executor_cache_peak
    }

    /// The `p`-th latency percentile in milliseconds (`p` in `[0, 100]`).
    /// Bucketed: never under the exact percentile, at most 6.25% over.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        self.latency.value_at_quantile(p / 100.0) as f64 * 1e-6
    }

    /// Mean time requests spent waiting in shard queues, in milliseconds.
    pub fn mean_queue_wait_ms(&self) -> f64 {
        self.queue_wait.mean() * 1e-6
    }

    /// Mean forward-pass time per executed batch, in milliseconds.
    pub fn mean_infer_ms(&self) -> f64 {
        self.infer.mean() * 1e-6
    }

    /// Folds the counters into a summary over `wall` seconds of serving.
    pub fn report(&self, wall: Duration) -> ServeReport {
        let wall_seconds = wall.as_secs_f64().max(f64::MIN_POSITIVE);
        ServeReport {
            requests: self.requests(),
            batches: self.batches(),
            wall_seconds,
            throughput_rps: self.requests() as f64 / wall_seconds,
            p50_ms: self.percentile_ms(50.0),
            p99_ms: self.percentile_ms(99.0),
            p999_ms: self.percentile_ms(99.9),
            shed: self.shed(),
            expired: self.expired(),
            stolen_batches: self.stolen_batches(),
            mean_batch_size: self.mean_batch_size(),
            mean_batch_occupancy: self.mean_batch_occupancy(),
            mean_queue_depth: self.mean_queue_depth(),
            max_queue_depth: self.max_queue_depth(),
            executor_cache_peak: self.executor_cache_peak(),
        }
    }
}

/// A machine-readable serving summary (printed by `serve_synthetic` and
/// appended to `BENCH_ci.json` by the CI serve-smoke step).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Requests served.
    pub requests: usize,
    /// Batches executed.
    pub batches: usize,
    /// Wall-clock seconds the load took.
    pub wall_seconds: f64,
    /// Served requests per second.
    pub throughput_rps: f64,
    /// Median end-to-end request latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end request latency in milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile end-to-end request latency in milliseconds.
    pub p999_ms: f64,
    /// Requests shed by admission control (bounded queues full).
    pub shed: usize,
    /// Requests expired in the queue past the configured deadline.
    pub expired: usize,
    /// Batches a worker assembled by stealing from a sibling's shard.
    pub stolen_batches: usize,
    /// Mean coalesced batch size.
    pub mean_batch_size: f64,
    /// Mean fraction of `max_batch` each executed batch filled.
    pub mean_batch_occupancy: f64,
    /// Mean sampled request-queue depth.
    pub mean_queue_depth: f64,
    /// Largest sampled request-queue depth.
    pub max_queue_depth: usize,
    /// Peak per-worker executor-cache size (bounded by the engine's
    /// `executor_cache` configuration).
    pub executor_cache_peak: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bucketed percentiles: never under the exact value, ≤ 6.25% over.
    fn assert_close(got_ms: f64, exact_ms: f64, what: &str) {
        assert!(got_ms >= exact_ms * (1.0 - 1e-9) - 1e-6, "{what}: {got_ms} << {exact_ms}");
        assert!(got_ms <= exact_ms * 1.0626 + 1e-6, "{what}: {got_ms} >> {exact_ms}");
    }

    #[test]
    fn percentiles_use_nearest_rank_within_bucket_error() {
        let m = ServeMetrics::new();
        for ms in 1..=100u64 {
            m.record_request(Duration::from_millis(ms));
        }
        let snap = m.snapshot();
        assert_close(snap.percentile_ms(50.0), 50.0, "p50");
        assert_close(snap.percentile_ms(99.0), 99.0, "p99");
        assert_close(snap.percentile_ms(100.0), 100.0, "p100");
        assert_eq!(snap.requests(), 100);
    }

    #[test]
    fn report_folds_counters() {
        let m = ServeMetrics::new();
        m.record_request(Duration::from_millis(2));
        m.record_batch(4);
        m.record_request(Duration::from_millis(4));
        m.record_batch(2);
        let report = m.snapshot().report(Duration::from_secs(2));
        assert_eq!(report.requests, 2);
        assert_eq!(report.batches, 2);
        assert!((report.throughput_rps - 1.0).abs() < 1e-9);
        assert!((report.mean_batch_size - 3.0).abs() < 1e-9);
        assert!(report.p99_ms >= report.p50_ms);
    }

    #[test]
    fn queue_and_cache_gauges() {
        let m = ServeMetrics::new();
        m.set_batch_capacity(8);
        m.record_batch(4);
        m.record_batch(8);
        m.record_queue_depth(1);
        m.record_queue_depth(5);
        m.record_queue_depth(3);
        m.record_executor_cache(2);
        m.record_executor_cache(3);
        m.record_executor_cache(1);
        let report = m.snapshot().report(Duration::from_secs(1));
        assert!((report.mean_batch_occupancy - 0.75).abs() < 1e-9);
        assert!((report.mean_queue_depth - 3.0).abs() < 1e-9);
        assert_eq!(report.max_queue_depth, 5);
        assert_eq!(report.executor_cache_peak, 3);
    }

    #[test]
    fn quantiles_on_known_distributions() {
        // Uniform 1..=1000 ms.
        let uniform = ServeMetrics::new();
        for ms in 1..=1000u64 {
            uniform.record_request(Duration::from_millis(ms));
        }
        let usnap = uniform.snapshot();
        assert_close(usnap.percentile_ms(50.0), 500.0, "uniform p50");
        assert_close(usnap.percentile_ms(99.0), 990.0, "uniform p99");
        assert_close(usnap.percentile_ms(99.9), 999.0, "uniform p999");
        assert_close(usnap.percentile_ms(100.0), 1000.0, "uniform p100");

        // Recording order must not matter.
        let reversed = ServeMetrics::new();
        for ms in (1..=1000u64).rev() {
            reversed.record_request(Duration::from_millis(ms));
        }
        let rsnap = reversed.snapshot();
        for p in [50.0, 90.0, 99.0, 99.9] {
            assert_eq!(usnap.percentile_ms(p), rsnap.percentile_ms(p), "p{p}");
        }

        // Two-point bimodal: 990 fast at 1 ms, 10 stragglers at 100 ms.
        // p50/p99 sit in the fast mode, p99.1+ in the slow tail.
        let bimodal = ServeMetrics::new();
        for _ in 0..990 {
            bimodal.record_request(Duration::from_millis(1));
        }
        for _ in 0..10 {
            bimodal.record_request(Duration::from_millis(100));
        }
        let bsnap = bimodal.snapshot();
        assert_close(bsnap.percentile_ms(50.0), 1.0, "bimodal p50");
        assert_close(bsnap.percentile_ms(99.0), 1.0, "bimodal p99");
        assert_close(bsnap.percentile_ms(99.1), 100.0, "bimodal p99.1");
        assert_close(bsnap.percentile_ms(99.9), 100.0, "bimodal p999");

        // Quantiles are monotone in p.
        let mut prev = 0.0;
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let q = bsnap.percentile_ms(p);
            assert!(q >= prev, "p{p}: {q} < {prev}");
            prev = q;
        }
    }

    #[test]
    fn counters_accumulate_and_gauges_track_peaks() {
        let m = ServeMetrics::new();
        m.record_shed(2);
        m.record_shed(3);
        m.record_expired(1);
        m.record_stolen_batch();
        m.record_stolen_batch();
        m.add_queued(5);
        m.add_queued(-2);
        let snap = m.snapshot();
        assert_eq!(snap.shed(), 5);
        assert_eq!(snap.expired(), 1);
        assert_eq!(snap.stolen_batches(), 2);
        assert_eq!(m.queued(), 3);
        // Peak gauges never regress.
        m.record_executor_cache(4);
        m.record_executor_cache(2);
        assert_eq!(m.snapshot().executor_cache_peak(), 4);
        m.set_batch_capacity(8);
        m.set_batch_capacity(4);
        m.record_batch(8);
        assert!((m.snapshot().mean_batch_occupancy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn serve_report_serde_round_trip() {
        let m = ServeMetrics::new();
        m.set_batch_capacity(4);
        for ms in [1u64, 2, 3, 40] {
            m.record_request(Duration::from_millis(ms));
        }
        m.record_batch(4);
        m.record_queue_depth(9);
        m.record_executor_cache(2);
        m.record_shed(6);
        m.record_expired(2);
        m.record_stolen_batch();
        let report = m.snapshot().report(Duration::from_secs(2));
        let json = serde_json::to_string(&report).unwrap();
        let back: ServeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report, "ServeReport changed across the serde shims");
        assert_eq!(back.shed, 6);
        assert_eq!(back.expired, 2);
        assert_eq!(back.stolen_batches, 1);
        assert_eq!(back.p999_ms, report.p999_ms);
    }

    #[test]
    fn prometheus_exposition_covers_the_serving_metrics() {
        let m = ServeMetrics::new();
        m.record_request(Duration::from_millis(3));
        m.record_batch(2);
        m.record_shed(1);
        m.record_expired(1);
        m.record_queue_depth(4);
        m.add_queued(2);
        let text = m.render_prometheus();
        for family in [
            "bnff_requests_total",
            "bnff_batches_total",
            "bnff_shed_total",
            "bnff_expired_total",
            "bnff_stolen_batches_total",
            "bnff_request_latency_seconds",
            "bnff_queue_wait_seconds",
            "bnff_infer_seconds",
            "bnff_queue_depth",
            "bnff_queued",
        ] {
            assert!(text.contains(&format!("# TYPE {family} ")), "missing TYPE for {family}");
        }
        assert!(text.contains("bnff_requests_total 1\n"));
        assert!(text.contains("bnff_shed_total 1\n"));
        assert!(text.contains("bnff_queued 2\n"));
        assert!(text.contains("bnff_request_latency_seconds_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("bnff_request_latency_seconds_count 1\n"));
    }

    #[test]
    fn empty_snapshot_is_safe() {
        let snap = MetricsSnapshot::empty();
        assert_eq!(snap.percentile_ms(99.0), 0.0);
        assert_eq!(snap.mean_batch_size(), 0.0);
        assert_eq!(snap.mean_batch_occupancy(), 0.0);
        assert_eq!(snap.mean_queue_depth(), 0.0);
        assert_eq!(snap.max_queue_depth(), 0);
        assert_eq!(snap.executor_cache_peak(), 0);
        let report = snap.report(Duration::from_millis(1));
        assert_eq!(report.requests, 0);
        let fresh = ServeMetrics::new();
        assert_eq!(fresh.snapshot(), MetricsSnapshot::empty());
    }
}
