//! Fluent construction of a [`ServeEngine`]: one entry point for every
//! model source and every batching knob.
//!
//! Before the builder, starting an engine meant choosing among three
//! constructors (`FrozenModel::from_executor`, `from_checkpoint`, or
//! `from_parts`) and hand-assembling a [`BatchingConfig`] literal. The
//! builder collapses that into a single pipeline — *source → knobs →
//! start* — and adds the file path source that sniffs the model format
//! (binary artifact vs. JSON checkpoint) from the magic bytes:
//!
//! ```rust,no_run
//! use bnff_serve::ServeEngine;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), bnff_serve::ServeError> {
//! let engine = ServeEngine::builder()
//!     .model_file("model.bnff")          // or .executor(..) / .checkpoint(..) / .model(..)
//!     .workers(4)
//!     .max_batch(16)
//!     .max_wait(Duration::from_millis(2))
//!     .deadline(Duration::from_millis(50))
//!     .start()?;
//! # let _ = engine; Ok(())
//! # }
//! ```

use crate::engine::{BatchingConfig, ServeEngine};
use crate::error::ServeError;
use crate::model::FrozenModel;
use crate::Result;
use bnff_train::checkpoint::Checkpoint;
use bnff_train::Executor;
use std::path::PathBuf;
use std::time::Duration;

/// Where the builder gets its [`FrozenModel`] from.
enum ModelSource {
    /// No source chosen yet — [`ServeEngineBuilder::start`] will error.
    Unset,
    /// An eagerly converted model (or the error its conversion produced;
    /// held until `start` so the builder methods stay chainable).
    Ready(Result<FrozenModel>),
    /// A model file, loaded lazily at `start`; the format (artifact vs.
    /// JSON checkpoint) is sniffed from the leading bytes.
    File(PathBuf),
}

/// Builds a [`ServeEngine`]: model source → batching knobs → `.start()`.
///
/// Created by [`ServeEngine::builder`]. Every knob defaults to
/// [`BatchingConfig::default`]; later source calls override earlier ones.
pub struct ServeEngineBuilder {
    source: ModelSource,
    config: BatchingConfig,
}

impl ServeEngineBuilder {
    pub(crate) fn new() -> Self {
        ServeEngineBuilder { source: ModelSource::Unset, config: BatchingConfig::default() }
    }

    /// Serves an already-frozen model.
    #[must_use]
    pub fn model(mut self, model: FrozenModel) -> Self {
        self.source = ModelSource::Ready(Ok(model));
        self
    }

    /// Freezes a live training executor (in-process train-then-serve).
    #[must_use]
    pub fn executor(mut self, executor: &Executor) -> Self {
        self.source = ModelSource::Ready(FrozenModel::from_parts(
            executor.graph(),
            executor.params(),
            executor.running_stats(),
        ));
        self
    }

    /// Freezes a loaded training checkpoint (process-separated serving).
    #[must_use]
    pub fn checkpoint(mut self, checkpoint: &Checkpoint) -> Self {
        self.source = ModelSource::Ready(FrozenModel::from_parts(
            &checkpoint.graph,
            &checkpoint.params,
            &checkpoint.running,
        ));
        self
    }

    /// Loads a model file at [`start`](Self::start) time, sniffing binary
    /// artifact vs. JSON checkpoint from the magic bytes (see
    /// [`FrozenModel::load`]).
    #[must_use]
    pub fn model_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.source = ModelSource::File(path.into());
        self
    }

    /// Replaces the entire batching configuration at once — the escape
    /// hatch for callers that already hold a [`BatchingConfig`].
    #[must_use]
    pub fn config(mut self, config: BatchingConfig) -> Self {
        self.config = config;
        self
    }

    /// Largest number of requests coalesced into one forward pass.
    #[must_use]
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch;
        self
    }

    /// Longest a request waits for co-batchers before running as-is.
    #[must_use]
    pub fn max_wait(mut self, max_wait: Duration) -> Self {
        self.config.max_wait = max_wait;
        self
    }

    /// Number of executor worker threads (one shard queue each).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Batch-size-specialized executors each worker keeps cached.
    #[must_use]
    pub fn executor_cache(mut self, executor_cache: usize) -> Self {
        self.config.executor_cache = executor_cache;
        self
    }

    /// Bound on each shard queue (total admission capacity is
    /// `workers × queue_depth`).
    #[must_use]
    pub fn queue_depth(mut self, queue_depth: usize) -> Self {
        self.config.queue_depth = queue_depth;
        self
    }

    /// Queueing deadline after which a waiting request is expired with
    /// [`ServeError::DeadlineExceeded`]. Accepts a [`Duration`] or an
    /// `Option<Duration>` (`None` disables the deadline, the default).
    #[must_use]
    pub fn deadline(mut self, deadline: impl Into<Option<Duration>>) -> Self {
        self.config.deadline = deadline.into();
        self
    }

    /// Total kernel-thread budget partitioned disjointly across workers
    /// (`0` inherits the caller's effective thread count at start).
    #[must_use]
    pub fn kernel_threads(mut self, kernel_threads: usize) -> Self {
        self.config.kernel_threads = kernel_threads;
        self
    }

    /// Trace-echo sampling period: every `trace_every`-th completion
    /// carries a [`RequestTrace`](crate::RequestTrace) (`0` disables).
    /// When never called, the engine reads `BNFF_TRACE` at start.
    #[must_use]
    pub fn trace_every(mut self, trace_every: u64) -> Self {
        self.config.trace_every = Some(trace_every);
        self
    }

    /// Resolves the model source without starting workers — used by
    /// callers that want the [`FrozenModel`] itself (direct executors,
    /// score baselines) configured through the same API.
    ///
    /// # Errors
    /// Returns an error when no source was chosen or loading/freezing the
    /// chosen source failed.
    pub fn build_model(self) -> Result<FrozenModel> {
        match self.source {
            ModelSource::Unset => Err(ServeError::InvalidArgument(
                "no model source: call .model(), .executor(), .checkpoint() or .model_file()"
                    .into(),
            )),
            ModelSource::Ready(model) => model,
            ModelSource::File(path) => FrozenModel::load(path),
        }
    }

    /// Resolves the model source and starts the engine.
    ///
    /// # Errors
    /// Returns an error when the model source is missing or fails to load,
    /// or for a zero `max_batch`/`workers`/`executor_cache`/`queue_depth`.
    pub fn start(self) -> Result<ServeEngine> {
        let config = self.config.clone();
        let model = self.build_model()?;
        ServeEngine::start_inner(model, config)
    }
}

impl std::fmt::Debug for ServeEngineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let source = match &self.source {
            ModelSource::Unset => "unset".to_string(),
            ModelSource::Ready(Ok(_)) => "ready".to_string(),
            ModelSource::Ready(Err(e)) => format!("failed: {e}"),
            ModelSource::File(path) => format!("file: {}", path.display()),
        };
        f.debug_struct("ServeEngineBuilder")
            .field("source", &source)
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_sourceless_builder_is_rejected() {
        let err = ServeEngine::builder().start().unwrap_err();
        assert!(matches!(err, ServeError::InvalidArgument(_)));
        assert!(err.to_string().contains("model source"));
    }

    #[test]
    fn a_missing_model_file_is_a_typed_model_error() {
        let err = ServeEngine::builder().model_file("/nonexistent/model.bnff").start().unwrap_err();
        assert!(matches!(err, ServeError::Model(bnff_artifact::ModelError::Io(_))));
    }

    #[test]
    fn knobs_land_in_the_config() {
        let b = ServeEngine::builder()
            .max_batch(32)
            .max_wait(Duration::from_millis(7))
            .workers(3)
            .executor_cache(2)
            .queue_depth(9)
            .deadline(Duration::from_millis(40))
            .kernel_threads(5)
            .trace_every(16);
        assert_eq!(b.config.max_batch, 32);
        assert_eq!(b.config.max_wait, Duration::from_millis(7));
        assert_eq!(b.config.workers, 3);
        assert_eq!(b.config.executor_cache, 2);
        assert_eq!(b.config.queue_depth, 9);
        assert_eq!(b.config.deadline, Some(Duration::from_millis(40)));
        assert_eq!(b.config.kernel_threads, 5);
        assert_eq!(b.config.trace_every, Some(16));
        // None clears the deadline; .config() replaces everything.
        let b = b.deadline(None).config(BatchingConfig::default());
        assert_eq!(b.config.max_batch, BatchingConfig::default().max_batch);
        assert!(format!("{b:?}").contains("unset"));
    }
}
