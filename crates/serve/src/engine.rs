//! The sharded dynamic micro-batching engine.
//!
//! Single-sample requests are admitted into **per-worker bounded shard
//! queues**; each worker coalesces its own shard into batches bounded by
//! `max_batch` samples and `max_wait` queueing delay (whichever comes
//! first), stamps a [`FrozenExecutor`] for the coalesced size, runs one
//! forward pass and fans the score rows back out to the callers. Because
//! the frozen graph has no batch-coupled operators left (BN folded into the
//! weights) and every kernel partitions per sample, a request's scores are
//! **identical** whether it was served alone or coalesced into a full batch
//! — the batcher trades latency for throughput, never numerics.
//!
//! ## Why shards
//!
//! The previous engine funneled every submission and every worker wakeup
//! through one `Mutex + Condvar` pair (and a second global metrics lock on
//! the submit path), and each worker fanned its kernels out to the full
//! `BNFF_THREADS` budget — `workers × BNFF_THREADS` runnable threads on
//! `BNFF_THREADS` cores. Throughput *fell* as workers were added. The
//! sharded design gives every worker its own queue and condvar, keeps the
//! submit path lock-local to one shard, and partitions the kernel-thread
//! budget disjointly across workers
//! ([`bnff_parallel::partition_threads`]), so adding workers adds serving
//! capacity instead of contention. Metrics ride on the lock-free
//! [`ServeMetrics`] registry handles — recording is relaxed atomics, so
//! the request path touches no metrics lock at all.
//!
//! ## Request identity and tracing
//!
//! Every admitted request carries a process-unique ID (minted at the
//! ingress that created it, or by [`ServeEngine::submit`] itself), so log
//! lines and trace echoes about one request share one correlator. A
//! sampled subset of requests (the `BNFF_TRACE` knob, or the builder's
//! `trace_every`) additionally gets a [`RequestTrace`] on its
//! [`Completion`]: queue-wait and inference span timings, the batch it
//! rode in, and which worker served it. The spans are *always* recorded
//! into the metrics histograms; sampling only decides whether they are
//! echoed back to the caller.
//!
//! ## Request lifecycle
//!
//! ```text
//! submit ──admit──▶ shard queue ──coalesce──▶ infer ──▶ completion
//!            │            │
//!            │            └─ deadline passed ──▶ Err(DeadlineExceeded)
//!            └─ all shards full ──▶ Err(Overloaded)   (shed at admission)
//! ```
//!
//! Admission is work-conserving: a submission whose home shard (picked
//! round-robin) is full spills to the next shard with room, and is shed
//! with [`ServeError::Overloaded`] only when **every** bounded queue is
//! full. Workers are work-conserving too: a worker whose own shard is empty
//! steals a *ripe* batch (full, past `max_wait`, or shutting down) from a
//! sibling shard before parking, so one hot shard cannot idle the rest of
//! the pool. The take/wait/park/exit decision itself is the pure
//! [`assembly::plan_step`](crate::assembly::plan_step) state machine,
//! exhaustively schedule-tested on its own.

use crate::assembly::{plan_step, BatchStep};
use crate::error::ServeError;
use crate::executor::FrozenExecutor;
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::model::FrozenModel;
use crate::Result;
use bnff_obs::{next_request_id, TraceSampler};
use bnff_parallel::{current_threads, partition_threads, with_threads};
use bnff_tensor::{Shape, Tensor};
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of the batching engine.
#[derive(Debug, Clone)]
pub struct BatchingConfig {
    /// Largest number of requests coalesced into one forward pass.
    pub max_batch: usize,
    /// Longest a request may wait in the queue for co-batchers before the
    /// engine runs it in whatever batch has formed.
    pub max_wait: Duration,
    /// Number of executor worker threads (one shard queue each).
    pub workers: usize,
    /// Largest number of batch-size-specialized executors (compiled tapes
    /// plus their register files) each worker keeps cached. Least-recently
    /// used sizes are evicted and recompiled on demand, bounding the
    /// memory a worker holds for rare batch sizes.
    pub executor_cache: usize,
    /// Bound on each shard queue. A submission finding **every** shard at
    /// this depth is shed with [`ServeError::Overloaded`]; total admission
    /// capacity is therefore `workers × queue_depth`.
    pub queue_depth: usize,
    /// Optional queueing deadline: a request still waiting for a worker
    /// after this long is expired with [`ServeError::DeadlineExceeded`]
    /// instead of served (the time already lost exceeds what the caller
    /// would accept, so serving it would only waste a batch slot).
    pub deadline: Option<Duration>,
    /// Total kernel-thread budget to partition disjointly across workers;
    /// `0` inherits the caller's effective thread count (`BNFF_THREADS`, a
    /// `with_threads` scope, or the machine's parallelism) at engine start
    /// time.
    pub kernel_threads: usize,
    /// Trace-echo sampling period: `Some(0)` disables, `Some(n)` echoes a
    /// [`RequestTrace`] on every `n`-th request's [`Completion`], and
    /// `None` (the default) reads the `BNFF_TRACE` environment variable at
    /// engine start.
    pub trace_every: Option<u64>,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        BatchingConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            workers: 1,
            executor_cache: 4,
            queue_depth: 64,
            deadline: None,
            kernel_threads: 0,
            trace_every: None,
        }
    }
}

/// Span timings of one traced request, echoed on its [`Completion`] (and
/// from there as the HTTP `X-BNFF-Trace` header / JSON `trace` field).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RequestTrace {
    /// The request's process-unique ID.
    pub request_id: u64,
    /// Microseconds the request waited in its shard queue before a worker
    /// took it into a batch.
    pub queue_us: u64,
    /// Microseconds of the forward pass of the batch it rode in.
    pub infer_us: u64,
    /// Size of the coalesced batch.
    pub batch_size: usize,
    /// Index of the worker that served it.
    pub worker: usize,
    /// Whether the batch was assembled by work-stealing.
    pub stolen: bool,
}

/// One served request's result.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The classifier scores for the sample (a 1-D tensor of class logits).
    pub scores: Tensor,
    /// End-to-end latency, enqueue → completion.
    pub latency: Duration,
    /// Size of the batch the request was coalesced into.
    pub batch_size: usize,
    /// Span timings, present only when the request was sampled for trace
    /// echo (see [`BatchingConfig::trace_every`]).
    pub trace: Option<RequestTrace>,
}

struct Request {
    sample: Tensor,
    enqueued: Instant,
    /// Process-unique request ID (minted at ingress or at submit).
    id: u64,
    /// Whether this request's completion echoes a [`RequestTrace`].
    trace: bool,
    tx: mpsc::Sender<Result<Completion>>,
}

struct ShardState {
    queue: VecDeque<Request>,
    shutdown: bool,
}

/// One bounded request queue with its own wakeup channel: the unit of
/// submit-side and worker-side locking.
struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
}

impl Shard {
    fn new() -> Self {
        Shard {
            state: Mutex::new(ShardState { queue: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ShardState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

struct Shared {
    model: FrozenModel,
    config: BatchingConfig,
    shards: Vec<Shard>,
    /// Round-robin home-shard cursor for admissions.
    next_shard: AtomicUsize,
    /// Lock-free registry handles: every worker and the submit path record
    /// through relaxed atomics; no request ever takes a metrics lock.
    metrics: ServeMetrics,
    /// Decides which requests echo a [`RequestTrace`].
    sampler: TraceSampler,
}

/// What a take attempt on one shard produced: requests to serve and/or
/// requests that expired at the queue front.
struct Assembled {
    batch: Vec<Request>,
    expired: Vec<Request>,
}

/// The serving engine: sharded request queues plus their worker pool.
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    budgets: Vec<usize>,
    started: Instant,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("workers", &self.workers.len())
            .field("kernel_budgets", &self.budgets)
            .field("max_batch", &self.shared.config.max_batch)
            .field("max_wait", &self.shared.config.max_wait)
            .field("queue_depth", &self.shared.config.queue_depth)
            .finish()
    }
}

impl ServeEngine {
    /// Begins fluent engine construction: pick a model source
    /// ([`model`](crate::ServeEngineBuilder::model),
    /// [`executor`](crate::ServeEngineBuilder::executor),
    /// [`checkpoint`](crate::ServeEngineBuilder::checkpoint) or
    /// [`model_file`](crate::ServeEngineBuilder::model_file)), adjust
    /// batching knobs, then [`start`](crate::ServeEngineBuilder::start).
    ///
    /// ```rust,no_run
    /// # fn main() -> Result<(), bnff_serve::ServeError> {
    /// let engine = bnff_serve::ServeEngine::builder()
    ///     .model_file("model.bnff")
    ///     .workers(2)
    ///     .max_batch(8)
    ///     .start()?;
    /// # let _ = engine; Ok(())
    /// # }
    /// ```
    pub fn builder() -> crate::builder::ServeEngineBuilder {
        crate::builder::ServeEngineBuilder::new()
    }

    /// Starts an engine over a frozen model and explicit configuration.
    #[deprecated(
        since = "0.1.0",
        note = "use `ServeEngine::builder()` — pick a model source, set knobs, `.start()`"
    )]
    pub fn start(model: FrozenModel, config: BatchingConfig) -> Result<Self> {
        Self::start_inner(model, config)
    }

    /// Starts an engine over a frozen model: one bounded shard queue per
    /// worker, each worker's kernel fan-out pinned to a disjoint slice of
    /// the kernel-thread budget.
    ///
    /// # Errors
    /// Returns an error for a zero `max_batch`/`workers`/`executor_cache`/
    /// `queue_depth` configuration.
    pub(crate) fn start_inner(model: FrozenModel, config: BatchingConfig) -> Result<Self> {
        if config.max_batch == 0
            || config.workers == 0
            || config.executor_cache == 0
            || config.queue_depth == 0
        {
            return Err(ServeError::InvalidArgument(
                "max_batch, workers, executor_cache and queue_depth must be positive".to_string(),
            ));
        }
        let total_threads =
            if config.kernel_threads > 0 { config.kernel_threads } else { current_threads() };
        let budgets = partition_threads(total_threads, config.workers);
        let metrics = ServeMetrics::new();
        metrics.set_batch_capacity(config.max_batch);
        let sampler = match config.trace_every {
            Some(n) => TraceSampler::every(n),
            None => TraceSampler::from_env(),
        };
        let shared = Arc::new(Shared {
            model,
            shards: (0..config.workers).map(|_| Shard::new()).collect(),
            next_shard: AtomicUsize::new(0),
            metrics,
            sampler,
            config,
        });
        let workers = budgets
            .iter()
            .enumerate()
            .map(|(i, &budget)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bnff-serve-{i}"))
                    .spawn(move || with_threads(budget, || worker_loop(&shared, i)))
                    .expect("spawning a serve worker")
            })
            .collect();
        Ok(ServeEngine { shared, workers, budgets, started: Instant::now() })
    }

    /// Submits one sample (`C × H × W`, or `1 × C × H × W`) for inference.
    /// Returns the channel the [`Completion`] arrives on.
    ///
    /// The home shard is picked round-robin; a full home shard spills to
    /// the next shard with room.
    ///
    /// # Errors
    /// Returns [`ServeError::Overloaded`] when every shard queue is full
    /// (the request is shed at admission and owns no channel),
    /// [`ServeError::ShuttingDown`] after [`ServeEngine::shutdown`], and an
    /// invalid-argument error when the sample shape disagrees with the
    /// model.
    pub fn submit(&self, sample: Tensor) -> Result<mpsc::Receiver<Result<Completion>>> {
        self.submit_traced(sample, next_request_id(), false)
    }

    /// [`submit`](ServeEngine::submit) with an ingress-minted request ID.
    /// `force_trace` echoes a [`RequestTrace`] on the completion regardless
    /// of the sampling knob (otherwise the engine's sampler decides).
    ///
    /// # Errors
    /// Same as [`submit`](ServeEngine::submit).
    pub fn submit_traced(
        &self,
        sample: Tensor,
        request_id: u64,
        force_trace: bool,
    ) -> Result<mpsc::Receiver<Result<Completion>>> {
        let per_sample = self.shared.model.sample_shape()?;
        let sample = if sample.shape() == &per_sample {
            let mut dims = vec![1usize];
            dims.extend_from_slice(per_sample.dims());
            Tensor::from_vec(Shape::new(dims), sample.into_vec()).map_err(ServeError::Tensor)?
        } else {
            let mut batched = vec![1usize];
            batched.extend_from_slice(per_sample.dims());
            if sample.shape().dims() != batched.as_slice() {
                return Err(ServeError::InvalidArgument(format!(
                    "sample shape {} does not match the model's {per_sample}",
                    sample.shape()
                )));
            }
            sample
        };
        let trace = force_trace || self.shared.sampler.sample();
        let (tx, rx) = mpsc::channel();
        let shards = &self.shared.shards;
        let home = self.shared.next_shard.fetch_add(1, Ordering::Relaxed) % shards.len();
        for probe in 0..shards.len() {
            let idx = (home + probe) % shards.len();
            let shard = &shards[idx];
            let mut state = shard.lock();
            if state.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if state.queue.len() < self.shared.config.queue_depth {
                state.queue.push_back(Request {
                    sample,
                    enqueued: Instant::now(),
                    id: request_id,
                    trace,
                    tx,
                });
                drop(state);
                self.shared.metrics.add_queued(1);
                shard.cv.notify_one();
                return Ok(rx);
            }
        }
        self.shared.metrics.record_shed(1);
        Err(ServeError::Overloaded { queued: self.shared.metrics.queued() })
    }

    /// Convenience wrapper: submit and block for the completion.
    ///
    /// # Errors
    /// Returns an error when submission fails (including shed-load) or the
    /// worker dropped the request.
    pub fn infer_blocking(&self, sample: Tensor) -> Result<Completion> {
        let rx = self.submit(sample)?;
        rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// A snapshot of the engine's latency/batching metrics since start.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The Prometheus text exposition of the engine's metrics registry
    /// (what `GET /metrics` on the HTTP server returns).
    pub fn prometheus_metrics(&self) -> String {
        self.shared.metrics.render_prometheus()
    }

    /// The trace-echo sampling period the engine resolved at start
    /// (`0` = tracing disabled).
    pub fn trace_period(&self) -> u64 {
        self.shared.sampler.period()
    }

    /// The per-sample input shape the model expects (`C × H × W`).
    ///
    /// # Errors
    /// Returns an error when the model's input node cannot be resolved.
    pub fn sample_shape(&self) -> Result<Shape> {
        self.shared.model.sample_shape()
    }

    /// Total admission capacity: `workers × queue_depth` queued requests.
    pub fn queue_capacity(&self) -> usize {
        self.shared.shards.len() * self.shared.config.queue_depth
    }

    /// The disjoint kernel-thread budgets the workers were started with.
    pub fn kernel_budgets(&self) -> &[usize] {
        &self.budgets
    }

    /// Wall-clock time since the engine started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Drains the queues, stops the workers and returns the final metrics.
    /// Every request admitted before shutdown still receives its
    /// completion.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop_workers();
        self.metrics()
    }

    fn stop_workers(&mut self) {
        for shard in &self.shared.shards {
            shard.lock().shutdown = true;
            shard.cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// How long an idle worker parks before re-scanning sibling shards for
/// ripe batches to steal. Bounded staleness: a ripe batch on a shard whose
/// owner is busy waits at most this long past `max_wait` for a thief.
fn steal_poll(config: &BatchingConfig) -> Duration {
    config.max_wait.clamp(Duration::from_micros(500), Duration::from_millis(5))
}

/// Attempts to assemble a batch from one shard. With `dwell`, blocks on the
/// shard's condvar for up to the oldest request's remaining `max_wait`
/// allowance (the owner's path); without, only ripe batches are taken (the
/// stealing path — half-formed batches stay with their owner so stealing
/// never degrades coalescing). Returns `None` when the shard has nothing
/// takeable.
fn take_from(shared: &Shared, shard_idx: usize, dwell: bool) -> Option<Assembled> {
    let config = &shared.config;
    let shard = &shared.shards[shard_idx];
    let mut state = shard.lock();
    loop {
        // Expire over-deadline requests at the queue front before deciding:
        // they must not be counted toward the batch nor hold the wait open.
        let mut expired = Vec::new();
        if let Some(deadline) = config.deadline {
            while state.queue.front().is_some_and(|r| r.enqueued.elapsed() > deadline) {
                expired.push(state.queue.pop_front().expect("front checked"));
            }
        }
        let oldest = state.queue.front().map(|r| r.enqueued.elapsed()).unwrap_or_default();
        let step =
            plan_step(state.queue.len(), oldest, state.shutdown, config.max_batch, config.max_wait);
        match step {
            BatchStep::Take(n) => {
                let batch: Vec<Request> = state.queue.drain(..n).collect();
                drop(state);
                shared.metrics.add_queued(-((n + expired.len()) as i64));
                return Some(Assembled { batch, expired });
            }
            BatchStep::WaitFor(remaining) if dwell && expired.is_empty() => {
                let (guard, _timeout) = shard
                    .cv
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                state = guard;
            }
            BatchStep::WaitFor(_) | BatchStep::Park | BatchStep::Exit => {
                drop(state);
                if expired.is_empty() {
                    return None;
                }
                shared.metrics.add_queued(-(expired.len() as i64));
                return Some(Assembled { batch: Vec::new(), expired });
            }
        }
    }
}

/// Takes the next batch for `worker`, preferring its own shard, stealing
/// ripe batches from siblings otherwise. Returns `None` only when the
/// engine is shutting down and every shard has drained.
fn next_batch(shared: &Shared, worker: usize) -> Option<(Assembled, bool)> {
    let shards = shared.shards.len();
    loop {
        // 1. Own shard: dwell up to the coalescing window.
        if let Some(assembled) = take_from(shared, worker, true) {
            return Some((assembled, false));
        }
        // 2. Steal pass: ripe batches on sibling shards whose owners are
        //    busy. One shard lock at a time — never nested, so no deadlock.
        for probe in 1..shards {
            let idx = (worker + probe) % shards;
            if let Some(assembled) = take_from(shared, idx, false) {
                return Some((assembled, true));
            }
        }
        // 3. Nothing takeable anywhere: exit if drained-and-shutdown, else
        //    park until a submission or the steal-poll interval.
        let shard = &shared.shards[worker];
        let state = shard.lock();
        if state.queue.is_empty() && state.shutdown {
            drop(state);
            // Own shard is empty+shutdown (checked under its lock: the
            // owner is the guaranteed drainer, so no request can still be
            // admitted here). Exit once the siblings are drained too.
            let all_drained = (0..shards).all(|idx| shared.shards[idx].lock().queue.is_empty());
            if all_drained {
                return None;
            }
        } else if state.queue.is_empty() {
            let timeout = steal_poll(&shared.config);
            if shards == 1 {
                drop(shard.cv.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner));
            } else {
                drop(
                    shard
                        .cv
                        .wait_timeout(state, timeout)
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                );
            }
        }
    }
}

/// A bounded per-worker cache of batch-size-specialized executors, evicting
/// the least-recently-used size. Entries are kept most-recently-used first.
struct ExecutorCache {
    cap: usize,
    entries: Vec<(usize, FrozenExecutor)>,
}

impl ExecutorCache {
    fn new(cap: usize) -> Self {
        ExecutorCache { cap: cap.max(1), entries: Vec::new() }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// The executor for `size`, compiling (and possibly evicting) on miss.
    fn get_or_compile(&mut self, size: usize, model: &FrozenModel) -> Result<&FrozenExecutor> {
        if let Some(i) = self.entries.iter().position(|(s, _)| *s == size) {
            let hit = self.entries.remove(i);
            self.entries.insert(0, hit);
        } else {
            let executor = model.executor(size)?;
            self.entries.insert(0, (size, executor));
            self.entries.truncate(self.cap);
        }
        Ok(&self.entries[0].1)
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    // Executors (compiled tapes + register files) are stamped per coalesced
    // batch size and cached per worker, bounded by `executor_cache`.
    let mut executors = ExecutorCache::new(shared.config.executor_cache);
    while let Some((assembled, stolen)) = next_batch(shared, worker) {
        let Assembled { batch, expired } = assembled;
        for request in expired {
            shared.metrics.record_expired(1);
            let _ = request.tx.send(Err(ServeError::DeadlineExceeded));
        }
        if batch.is_empty() {
            continue;
        }
        let size = batch.len();
        // Span boundaries: enqueue → taken is the queue wait, taken →
        // completed is the inference span (shared by every request in the
        // batch).
        let taken = Instant::now();
        let result = run_batch(shared, &mut executors, &batch);
        let completed = Instant::now();
        let metrics = &shared.metrics;
        metrics.record_batch(size);
        metrics.record_queue_depth(shared.shards[worker].lock().queue.len());
        metrics.record_executor_cache(executors.len());
        if stolen {
            metrics.record_stolen_batch();
        }
        let infer = completed.duration_since(taken);
        if result.is_ok() {
            metrics.record_infer(infer);
            for request in &batch {
                metrics.record_request(completed.duration_since(request.enqueued));
                metrics.record_queue_wait(taken.duration_since(request.enqueued));
            }
        }
        match result {
            Ok(rows) => {
                for (request, scores) in batch.into_iter().zip(rows) {
                    let latency = completed.duration_since(request.enqueued);
                    let trace = request.trace.then(|| RequestTrace {
                        request_id: request.id,
                        queue_us: taken.duration_since(request.enqueued).as_micros() as u64,
                        infer_us: infer.as_micros() as u64,
                        batch_size: size,
                        worker,
                        stolen,
                    });
                    let _ = request.tx.send(Ok(Completion {
                        scores,
                        latency,
                        batch_size: size,
                        trace,
                    }));
                }
            }
            Err(err) => {
                for request in batch {
                    let _ = request.tx.send(Err(err.clone()));
                }
            }
        }
    }
}

/// Stacks the batch, runs one forward pass and slices the score rows back
/// out (one 1-D logits tensor per request, in submission order).
fn run_batch(
    shared: &Shared,
    executors: &mut ExecutorCache,
    batch: &[Request],
) -> Result<Vec<Tensor>> {
    let size = batch.len();
    let executor = executors.get_or_compile(size, &shared.model)?;
    let sample_volume = batch[0].sample.len();
    let mut stacked = Vec::with_capacity(size * sample_volume);
    for request in batch {
        stacked.extend_from_slice(request.sample.as_slice());
    }
    let mut dims = executor.input_shape().dims().to_vec();
    dims[0] = size;
    let data = Tensor::from_vec(Shape::new(dims), stacked).map_err(ServeError::Tensor)?;
    let scores = executor.infer_owned(data)?;
    let classes = scores.len() / size.max(1);
    Ok((0..size)
        .map(|i| Tensor::from_slice(&scores.as_slice()[i * classes..(i + 1) * classes]))
        .collect())
}
