//! The dynamic micro-batching engine.
//!
//! Single-sample requests enter a shared queue; a pool of worker threads
//! coalesces them into batches bounded by `max_batch` samples and
//! `max_wait` queueing delay (whichever comes first), stamps a
//! [`FrozenExecutor`] for the coalesced size, runs one forward pass and
//! fans the score rows back out to the callers. Because the frozen graph
//! has no batch-coupled operators left (BN folded into the weights) and
//! every kernel partitions per sample, a request's scores are **identical**
//! whether it was served alone or coalesced into a full batch — the
//! batcher trades latency for throughput, never numerics.

use crate::error::ServeError;
use crate::executor::FrozenExecutor;
use crate::metrics::LatencyRecorder;
use crate::model::FrozenModel;
use crate::Result;
use bnff_tensor::{Shape, Tensor};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of the batching engine.
#[derive(Debug, Clone)]
pub struct BatchingConfig {
    /// Largest number of requests coalesced into one forward pass.
    pub max_batch: usize,
    /// Longest a request may wait in the queue for co-batchers before the
    /// engine runs it in whatever batch has formed.
    pub max_wait: Duration,
    /// Number of executor worker threads.
    pub workers: usize,
    /// Largest number of batch-size-specialized executors (compiled tapes
    /// plus their register files) each worker keeps cached. Least-recently
    /// used sizes are evicted and recompiled on demand, bounding the
    /// memory a worker holds for rare batch sizes.
    pub executor_cache: usize,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        BatchingConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            workers: 1,
            executor_cache: 4,
        }
    }
}

/// One served request's result.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The classifier scores for the sample (a 1-D tensor of class logits).
    pub scores: Tensor,
    /// End-to-end latency, enqueue → completion.
    pub latency: Duration,
    /// Size of the batch the request was coalesced into.
    pub batch_size: usize,
}

struct Request {
    sample: Tensor,
    enqueued: Instant,
    tx: mpsc::Sender<Result<Completion>>,
}

struct QueueState {
    queue: VecDeque<Request>,
    shutdown: bool,
}

struct Shared {
    model: FrozenModel,
    config: BatchingConfig,
    state: Mutex<QueueState>,
    cv: Condvar,
    metrics: Mutex<LatencyRecorder>,
}

/// The serving engine: a request queue plus its worker pool.
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    started: Instant,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("workers", &self.workers.len())
            .field("max_batch", &self.shared.config.max_batch)
            .field("max_wait", &self.shared.config.max_wait)
            .finish()
    }
}

impl ServeEngine {
    /// Starts an engine over a frozen model.
    ///
    /// # Errors
    /// Returns an error for a zero `max_batch`/`workers` configuration.
    pub fn start(model: FrozenModel, config: BatchingConfig) -> Result<Self> {
        if config.max_batch == 0 || config.workers == 0 || config.executor_cache == 0 {
            return Err(ServeError::InvalidArgument(
                "max_batch, workers and executor_cache must be positive".to_string(),
            ));
        }
        let mut recorder = LatencyRecorder::new();
        recorder.set_batch_capacity(config.max_batch);
        let shared = Arc::new(Shared {
            model,
            config: config.clone(),
            state: Mutex::new(QueueState { queue: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
            metrics: Mutex::new(recorder),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bnff-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a serve worker")
            })
            .collect();
        Ok(ServeEngine { shared, workers, started: Instant::now() })
    }

    /// Submits one sample (`C × H × W`, or `1 × C × H × W`) for inference.
    /// Returns the channel the [`Completion`] arrives on.
    ///
    /// # Errors
    /// Returns an error when the sample shape disagrees with the model or
    /// the engine is shutting down.
    pub fn submit(&self, sample: Tensor) -> Result<mpsc::Receiver<Result<Completion>>> {
        let per_sample = self.shared.model.sample_shape()?;
        let sample = if sample.shape() == &per_sample {
            let mut dims = vec![1usize];
            dims.extend_from_slice(per_sample.dims());
            Tensor::from_vec(Shape::new(dims), sample.into_vec()).map_err(ServeError::Tensor)?
        } else {
            let mut batched = vec![1usize];
            batched.extend_from_slice(per_sample.dims());
            if sample.shape().dims() != batched.as_slice() {
                return Err(ServeError::InvalidArgument(format!(
                    "sample shape {} does not match the model's {per_sample}",
                    sample.shape()
                )));
            }
            sample
        };
        let (tx, rx) = mpsc::channel();
        let depth = {
            let mut state =
                self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if state.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            state.queue.push_back(Request { sample, enqueued: Instant::now(), tx });
            state.queue.len()
        };
        {
            let mut metrics =
                self.shared.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            metrics.record_queue_depth(depth);
        }
        self.shared.cv.notify_one();
        Ok(rx)
    }

    /// Convenience wrapper: submit and block for the completion.
    ///
    /// # Errors
    /// Returns an error when submission fails or the worker dropped the
    /// request.
    pub fn infer_blocking(&self, sample: Tensor) -> Result<Completion> {
        let rx = self.submit(sample)?;
        rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// A snapshot of the engine's latency/batching metrics since start.
    pub fn metrics(&self) -> LatencyRecorder {
        self.shared.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Wall-clock time since the engine started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Drains the queue, stops the workers and returns the final metrics.
    pub fn shutdown(mut self) -> LatencyRecorder {
        self.stop_workers();
        self.metrics()
    }

    fn stop_workers(&mut self) {
        {
            let mut state =
                self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            state.shutdown = true;
        }
        self.shared.cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Takes the next batch off the queue, or `None` when shutting down and
/// drained. Blocks while the queue is empty; once a request is pending,
/// waits at most until that request's deadline for co-batchers.
fn next_batch(shared: &Shared) -> Option<Vec<Request>> {
    let mut state = shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    loop {
        if state.queue.is_empty() {
            if state.shutdown {
                return None;
            }
            state = shared.cv.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
            continue;
        }
        let oldest = state.queue.front().map(|r| r.enqueued.elapsed()).unwrap_or_default();
        let full = state.queue.len() >= shared.config.max_batch;
        if full || oldest >= shared.config.max_wait || state.shutdown {
            let take = state.queue.len().min(shared.config.max_batch);
            return Some(state.queue.drain(..take).collect());
        }
        let remaining = shared.config.max_wait - oldest;
        let (guard, _timeout) = shared
            .cv
            .wait_timeout(state, remaining)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state = guard;
    }
}

/// A bounded per-worker cache of batch-size-specialized executors, evicting
/// the least-recently-used size. Entries are kept most-recently-used first.
struct ExecutorCache {
    cap: usize,
    entries: Vec<(usize, FrozenExecutor)>,
}

impl ExecutorCache {
    fn new(cap: usize) -> Self {
        ExecutorCache { cap: cap.max(1), entries: Vec::new() }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// The executor for `size`, compiling (and possibly evicting) on miss.
    fn get_or_compile(&mut self, size: usize, model: &FrozenModel) -> Result<&FrozenExecutor> {
        if let Some(i) = self.entries.iter().position(|(s, _)| *s == size) {
            let hit = self.entries.remove(i);
            self.entries.insert(0, hit);
        } else {
            let executor = model.executor(size)?;
            self.entries.insert(0, (size, executor));
            self.entries.truncate(self.cap);
        }
        Ok(&self.entries[0].1)
    }
}

fn worker_loop(shared: &Shared) {
    // Executors (compiled tapes + register files) are stamped per coalesced
    // batch size and cached per worker, bounded by `executor_cache`.
    let mut executors = ExecutorCache::new(shared.config.executor_cache);
    while let Some(batch) = next_batch(shared) {
        let size = batch.len();
        let result = run_batch(shared, &mut executors, &batch);
        let completed = Instant::now();
        {
            let queued =
                shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner).queue.len();
            let mut metrics =
                shared.metrics.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            metrics.record_batch(size);
            metrics.record_queue_depth(queued);
            metrics.record_executor_cache(executors.len());
            if result.is_ok() {
                for request in &batch {
                    metrics.record(completed.duration_since(request.enqueued));
                }
            }
        }
        match result {
            Ok(rows) => {
                for (request, scores) in batch.into_iter().zip(rows) {
                    let latency = completed.duration_since(request.enqueued);
                    let _ = request.tx.send(Ok(Completion { scores, latency, batch_size: size }));
                }
            }
            Err(err) => {
                for request in batch {
                    let _ = request.tx.send(Err(err.clone()));
                }
            }
        }
    }
}

/// Stacks the batch, runs one forward pass and slices the score rows back
/// out (one 1-D logits tensor per request, in submission order).
fn run_batch(
    shared: &Shared,
    executors: &mut ExecutorCache,
    batch: &[Request],
) -> Result<Vec<Tensor>> {
    let size = batch.len();
    let executor = executors.get_or_compile(size, &shared.model)?;
    let sample_volume = batch[0].sample.len();
    let mut stacked = Vec::with_capacity(size * sample_volume);
    for request in batch {
        stacked.extend_from_slice(request.sample.as_slice());
    }
    let mut dims = executor.input_shape().dims().to_vec();
    dims[0] = size;
    let data = Tensor::from_vec(Shape::new(dims), stacked).map_err(ServeError::Tensor)?;
    let scores = executor.infer_owned(data)?;
    let classes = scores.len() / size.max(1);
    Ok((0..size)
        .map(|i| Tensor::from_slice(&scores.as_slice()[i * classes..(i + 1) * classes]))
        .collect())
}
