//! Error type for the serving subsystem.

use std::fmt;

/// Errors produced while freezing, folding or serving a model.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A frozen node's parameters could not be derived from the training
    /// state (missing parameters, missing running statistics, channel
    /// mismatches).
    Fold(String),
    /// A request or configuration was invalid.
    InvalidArgument(String),
    /// The engine is shutting down and no longer accepts requests.
    ShuttingDown,
    /// Admission control shed the request: every shard's bounded queue was
    /// full. Carries the total number of requests queued across shards at
    /// the moment of rejection, for callers that log or adapt their rate.
    Overloaded {
        /// Requests queued engine-wide when admission was refused.
        queued: usize,
    },
    /// The request waited in the queue past the engine's configured
    /// deadline and was expired instead of served.
    DeadlineExceeded,
    /// An error bubbled up from the graph crate.
    Graph(bnff_graph::GraphError),
    /// An error bubbled up from a kernel.
    Kernel(bnff_kernels::KernelError),
    /// An error bubbled up from the tensor substrate.
    Tensor(bnff_tensor::TensorError),
    /// A model (JSON checkpoint or binary artifact) could not be loaded —
    /// the shared typed hierarchy from `bnff-artifact`.
    Model(bnff_artifact::ModelError),
    /// An error bubbled up from the training substrate (checkpoint load).
    Train(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Fold(msg) => write!(f, "fold error: {msg}"),
            ServeError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            ServeError::ShuttingDown => write!(f, "the serving engine is shutting down"),
            ServeError::Overloaded { queued } => {
                write!(f, "engine overloaded: all bounded shard queues full ({queued} queued)")
            }
            ServeError::DeadlineExceeded => {
                write!(f, "request expired in the queue past its deadline")
            }
            ServeError::Graph(err) => write!(f, "graph error: {err}"),
            ServeError::Kernel(err) => write!(f, "kernel error: {err}"),
            ServeError::Tensor(err) => write!(f, "tensor error: {err}"),
            ServeError::Model(err) => write!(f, "model error: {err}"),
            ServeError::Train(msg) => write!(f, "training-state error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Graph(err) => Some(err),
            ServeError::Kernel(err) => Some(err),
            ServeError::Tensor(err) => Some(err),
            ServeError::Model(err) => Some(err),
            _ => None,
        }
    }
}

impl From<bnff_graph::GraphError> for ServeError {
    fn from(err: bnff_graph::GraphError) -> Self {
        ServeError::Graph(err)
    }
}

impl From<bnff_kernels::KernelError> for ServeError {
    fn from(err: bnff_kernels::KernelError) -> Self {
        ServeError::Kernel(err)
    }
}

impl From<bnff_tensor::TensorError> for ServeError {
    fn from(err: bnff_tensor::TensorError) -> Self {
        ServeError::Tensor(err)
    }
}

impl From<bnff_train::TrainError> for ServeError {
    fn from(err: bnff_train::TrainError) -> Self {
        match err {
            // Model-loading failures keep their typed identity across the
            // layer boundary so callers (and the HTTP/C ABI surfaces) can
            // match on one hierarchy.
            bnff_train::TrainError::Model(err) => ServeError::Model(err),
            other => ServeError::Train(other.to_string()),
        }
    }
}

impl From<bnff_artifact::ModelError> for ServeError {
    fn from(err: bnff_artifact::ModelError) -> Self {
        ServeError::Model(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ServeError = bnff_graph::GraphError::CyclicGraph.into();
        assert!(e.to_string().contains("cycle"));
        let e: ServeError = bnff_tensor::TensorError::InvalidArgument("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(ServeError::ShuttingDown.to_string().contains("shutting down"));
        assert!(ServeError::Overloaded { queued: 7 }.to_string().contains("7 queued"));
        assert!(ServeError::DeadlineExceeded.to_string().contains("deadline"));
        let model = bnff_artifact::ModelError::BadMagic { found: *b"NOPE" };
        let e: ServeError = bnff_train::TrainError::Model(model.clone()).into();
        assert_eq!(e, ServeError::Model(model));
        assert!(std::error::Error::source(&e).is_some());
        let e: ServeError = bnff_train::TrainError::Unsupported("op".into()).into();
        assert!(matches!(e, ServeError::Train(_)));
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ServeError>();
    }
}
