//! `bnff_serve` — serve a trained model file over HTTP.
//!
//! ```text
//! bnff_serve --model model.bnff [--addr 127.0.0.1:8080] [--workers 2]
//!            [--max-batch 8] [--max-wait-ms 2] [--queue-depth 64]
//!            [--deadline-ms 50] [--kernel-threads 0] [--trace-every N]
//!            [--access-log]
//! ```
//!
//! The model file may be a binary artifact (`.bnff`) or a JSON checkpoint;
//! the format is sniffed from the magic bytes. The process runs until
//! `POST /v1/shutdown` drains it (see the `bnff_serve::httpd` docs for the
//! endpoint table and status-code mapping).
//!
//! Operational output is structured logfmt on stderr (`bnff_obs::log`): a
//! `startup` line dumping the effective config, one `access` line per
//! request when `--access-log` is set, and a `shutdown` summary with the
//! final request counts and latency percentiles.

use bnff_obs::log::log_event;
use bnff_serve::{HttpOptions, ServeEngine};
use std::time::Duration;

struct Args {
    model: String,
    addr: String,
    workers: usize,
    max_batch: usize,
    max_wait: Duration,
    queue_depth: usize,
    deadline: Option<Duration>,
    kernel_threads: usize,
    trace_every: Option<u64>,
    access_log: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bnff_serve --model <file> [--addr HOST:PORT] [--workers N] [--max-batch N]\n\
         \x20                 [--max-wait-ms N] [--queue-depth N] [--deadline-ms N]\n\
         \x20                 [--kernel-threads N] [--trace-every N] [--access-log]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        model: String::new(),
        addr: "127.0.0.1:8080".to_string(),
        workers: 2,
        max_batch: 8,
        max_wait: Duration::from_millis(2),
        queue_depth: 64,
        deadline: None,
        kernel_threads: 0,
        trace_every: None,
        access_log: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--model" => args.model = value("--model"),
            "--addr" => args.addr = value("--addr"),
            "--workers" => args.workers = parse_num(&value("--workers"), "--workers"),
            "--max-batch" => args.max_batch = parse_num(&value("--max-batch"), "--max-batch"),
            "--max-wait-ms" => {
                args.max_wait =
                    Duration::from_millis(parse_num(&value("--max-wait-ms"), "--max-wait-ms"));
            }
            "--queue-depth" => {
                args.queue_depth = parse_num(&value("--queue-depth"), "--queue-depth");
            }
            "--deadline-ms" => {
                args.deadline = Some(Duration::from_millis(parse_num(
                    &value("--deadline-ms"),
                    "--deadline-ms",
                )));
            }
            "--kernel-threads" => {
                args.kernel_threads = parse_num(&value("--kernel-threads"), "--kernel-threads");
            }
            "--trace-every" => {
                args.trace_every = Some(parse_num(&value("--trace-every"), "--trace-every"));
            }
            "--access-log" => args.access_log = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if args.model.is_empty() {
        eprintln!("--model is required");
        usage()
    }
    args
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("bad value {raw:?} for {flag}");
        usage()
    })
}

fn main() {
    let args = parse_args();
    let mut builder = ServeEngine::builder()
        .model_file(&args.model)
        .workers(args.workers)
        .max_batch(args.max_batch)
        .max_wait(args.max_wait)
        .queue_depth(args.queue_depth)
        .deadline(args.deadline)
        .kernel_threads(args.kernel_threads);
    if let Some(every) = args.trace_every {
        builder = builder.trace_every(every);
    }
    let engine = builder.start().unwrap_or_else(|e| {
        eprintln!("bnff_serve: starting the engine from {}: {e}", args.model);
        std::process::exit(1);
    });
    let trace_period = engine.trace_period();
    let server = bnff_serve::HttpServer::bind_with(
        engine,
        &args.addr,
        HttpOptions { access_log: args.access_log },
    )
    .unwrap_or_else(|e| {
        eprintln!("bnff_serve: {e}");
        std::process::exit(1);
    });
    log_event(
        "bnff_serve",
        "startup",
        &[
            ("addr", format!("http://{}", server.local_addr())),
            ("model", args.model.clone()),
            ("workers", args.workers.to_string()),
            ("max_batch", args.max_batch.to_string()),
            ("max_wait_ms", args.max_wait.as_millis().to_string()),
            ("queue_depth", args.queue_depth.to_string()),
            (
                "deadline_ms",
                args.deadline.map_or("none".to_string(), |d| d.as_millis().to_string()),
            ),
            ("kernel_threads", args.kernel_threads.to_string()),
            ("trace_every", trace_period.to_string()),
            ("access_log", args.access_log.to_string()),
        ],
    );
    println!("bnff_serve: listening on http://{} (model {})", server.local_addr(), args.model);
    println!(
        "bnff_serve: POST /v1/infer · GET /v1/metrics · GET /metrics · GET /v1/healthz · \
         POST /v1/shutdown"
    );
    let report = server.wait();
    match report {
        Some(metrics) => log_event(
            "bnff_serve",
            "shutdown",
            &[
                ("requests", metrics.requests().to_string()),
                ("batches", metrics.batches().to_string()),
                ("shed", metrics.shed().to_string()),
                ("expired", metrics.expired().to_string()),
                ("p50_ms", format!("{:.3}", metrics.percentile_ms(50.0))),
                ("p99_ms", format!("{:.3}", metrics.percentile_ms(99.0))),
                ("mean_batch", format!("{:.2}", metrics.mean_batch_size())),
            ],
        ),
        None => log_event("bnff_serve", "shutdown", &[("requests", "unknown".to_string())]),
    }
    println!("bnff_serve: drained, exiting");
}
