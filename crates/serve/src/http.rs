//! A minimal HTTP/1.1 request parser and response writer over `std::io`.
//!
//! The workspace builds without crates.io access, so the serving boundary
//! speaks HTTP through a deliberately small hand-rolled implementation:
//! request-line + headers + `Content-Length` body, hard size limits on
//! every dimension, and nothing else (no chunked encoding, no keep-alive
//! pipelining, no TLS). That is exactly the subset `curl`, load balancers
//! and the bundled load generators need to reach `POST /v1/infer`.
//!
//! Parsing is pure over any [`BufRead`], so the unit tests drive it from
//! in-memory byte slices without sockets.

use std::fmt;
use std::io::{BufRead, Write};

/// Largest accepted request line + single header line, in bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Largest accepted number of headers.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes (a batch of f32 samples in
/// decimal JSON stays far under this).
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, uppercased by the client (`GET`, `POST`).
    pub method: String,
    /// The request target path, without the query string.
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased at parse time.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed. Every variant maps to a `400` except
/// [`HttpError::BodyTooLarge`] (`413`) and [`HttpError::Closed`] (no
/// response — the peer went away).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The connection closed before a full request arrived.
    Closed,
    /// The request line is not `METHOD /path HTTP/1.x`.
    BadRequestLine(String),
    /// A header line has no `:` separator, or there are too many headers.
    BadHeader(String),
    /// `Content-Length` is missing on a body-bearing method, unparseable,
    /// or the body ended early.
    BadBody(String),
    /// The declared body exceeds [`MAX_BODY`].
    BodyTooLarge(usize),
    /// A line exceeds [`MAX_LINE`].
    LineTooLong,
    /// An I/O error on the connection.
    Io(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed mid-request"),
            HttpError::BadRequestLine(line) => write!(f, "malformed request line: {line:?}"),
            HttpError::BadHeader(line) => write!(f, "malformed header: {line:?}"),
            HttpError::BadBody(msg) => write!(f, "bad request body: {msg}"),
            HttpError::BodyTooLarge(n) => {
                write!(f, "request body of {n} bytes exceeds the {MAX_BODY}-byte limit")
            }
            HttpError::LineTooLong => write!(f, "request line or header exceeds {MAX_LINE} bytes"),
            HttpError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads one `\r\n`- (or `\n`-) terminated line, bounded by [`MAX_LINE`].
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Closed);
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| HttpError::BadHeader("non-UTF-8 header bytes".into()));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(HttpError::LineTooLong);
                }
            }
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
}

/// Parses one HTTP/1.x request from the reader. Returns `Ok(None)` when the
/// connection closed cleanly before any bytes arrived.
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let line = match read_line(reader)? {
        Some(line) => line,
        None => return Ok(None),
    };
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::BadRequestLine(line.clone())),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequestLine(line.clone()));
    }
    let method = method.to_ascii_uppercase();
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?.ok_or(HttpError::Closed)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::BadHeader("too many headers".into()));
        }
        let (name, value) =
            line.split_once(':').ok_or_else(|| HttpError::BadHeader(line.clone()))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::BadBody(format!("unparseable content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(HttpError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        std::io::Read::read_exact(reader, &mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                HttpError::BadBody(format!("body ended before the declared {content_length} bytes"))
            } else {
                HttpError::Io(e.to_string())
            }
        })?;
    }
    Ok(Some(Request { method, path, headers, body }))
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one complete HTTP/1.1 response and closes the exchange
/// (`Connection: close` — one request per connection). The content type
/// defaults to JSON; an explicit `content-type` in `extra_headers`
/// overrides it (the Prometheus exposition endpoint is plain text).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {status} {}\r\n", reason(status));
    if !extra_headers.iter().any(|(name, _)| name.eq_ignore_ascii_case("content-type")) {
        head.push_str("content-type: application/json\r\n");
    }
    head.push_str(&format!("content-length: {}\r\nconnection: close\r\n", body.len()));
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_a_get_request() {
        let req = parse(b"GET /v1/healthz HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let req =
            parse(b"POST /v1/infer?debug=1 HTTP/1.1\r\nContent-Length: 12\r\n\r\n{\"sample\":1}")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/infer");
        assert_eq!(req.body, b"{\"sample\":1}");
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let req = parse(b"GET / HTTP/1.0\nA: b\n\n").unwrap().unwrap();
        assert_eq!(req.header("a"), Some("b"));
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        assert!(matches!(parse(b"GARBAGE\r\n\r\n"), Err(HttpError::BadRequestLine(_))));
        assert!(matches!(parse(b"GET / SPDY/99\r\n\r\n"), Err(HttpError::BadRequestLine(_))));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nnocolon\r\n\r\n"),
            Err(HttpError::BadHeader(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: zap\r\n\r\n"),
            Err(HttpError::BadBody(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort"),
            Err(HttpError::BadBody(_))
        ));
        assert!(matches!(parse(b"GET / HTT"), Err(HttpError::Closed)));
        assert_eq!(parse(b"").unwrap(), None);
    }

    #[test]
    fn size_limits_are_enforced() {
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_LINE + 1));
        assert!(matches!(parse(huge.as_bytes()), Err(HttpError::LineTooLong)));

        let declared = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(parse(declared.as_bytes()), Err(HttpError::BodyTooLarge(_))));

        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert!(matches!(parse(many.as_bytes()), Err(HttpError::BadHeader(_))));
    }

    #[test]
    fn responses_are_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 429, &[("retry-after", "1".to_string())], "{\"err\":1}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("content-length: 9\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"err\":1}"));
        assert_eq!(reason(504), "Gateway Timeout");
        assert_eq!(reason(599), "Unknown");
    }

    #[test]
    fn explicit_content_type_overrides_the_json_default() {
        let mut out = Vec::new();
        let headers = [("content-type", "text/plain; version=0.0.4; charset=utf-8".to_string())];
        write_response(&mut out, 200, &headers, "metric 1\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("application/json"));
        assert_eq!(text.matches("content-type:").count(), 1);
        assert!(text.contains("content-type: text/plain; version=0.0.4; charset=utf-8\r\n"));
    }
}
