//! The frozen model: a batch-retargetable frozen graph plus its folded
//! parameters.
//!
//! A [`FrozenModel`] is built once — from a live [`Executor`], or from a
//! [`Checkpoint`] written by a separate training process — and then stamped
//! into per-batch-size [`FrozenExecutor`]s. Shapes in the graph IR are
//! concrete, so retargeting rebuilds the node list with the requested batch
//! dimension and re-infers every shape; node ids (and therefore the folded
//! parameter keys) are preserved because insertion order is.

use crate::error::ServeError;
use crate::executor::FrozenExecutor;
use crate::params::{fold_params, FrozenParamSet};
use crate::Result;
use bnff_artifact::{Artifact, ModelError};
use bnff_graph::passes::freeze::{freeze, FrozenGraph};
use bnff_graph::{Graph, NodeId};
use bnff_tensor::Shape;
use bnff_train::checkpoint::Checkpoint;
use bnff_train::running::RunningStatSet;
use bnff_train::{Executor, ParamSet};
use std::path::Path;
use std::sync::Arc;

/// A frozen, BN-folded model ready for serving.
#[derive(Debug, Clone)]
pub struct FrozenModel {
    template: Graph,
    params: Arc<FrozenParamSet>,
    input: NodeId,
    output: NodeId,
}

impl FrozenModel {
    /// Freezes a training graph and folds its parameters + running
    /// statistics.
    ///
    /// # Errors
    /// Returns an error when the freeze pass or the numeric fold fails.
    pub fn from_parts(graph: &Graph, params: &ParamSet, running: &RunningStatSet) -> Result<Self> {
        let frozen: FrozenGraph = freeze(graph)?;
        let folded = fold_params(&frozen, params, running)?;
        Ok(FrozenModel {
            template: frozen.graph,
            params: Arc::new(folded),
            input: frozen.input,
            output: frozen.output,
        })
    }

    /// Freezes a live training executor.
    #[deprecated(
        since = "0.1.0",
        note = "use `ServeEngine::builder().executor(..)`, or `FrozenModel::from_parts` when you \
                need the model itself"
    )]
    pub fn from_executor(executor: &Executor) -> Result<Self> {
        Self::from_parts(executor.graph(), executor.params(), executor.running_stats())
    }

    /// Loads and freezes a model checkpoint.
    #[deprecated(
        since = "0.1.0",
        note = "use `ServeEngine::builder().checkpoint(..)`, or `FrozenModel::load` to read a \
                model file directly"
    )]
    pub fn from_checkpoint(checkpoint: &Checkpoint) -> Result<Self> {
        Self::from_parts(&checkpoint.graph, &checkpoint.params, &checkpoint.running)
    }

    /// Loads and freezes a model file — the process-separation path: the
    /// trainer wrote the file, the server folds it. The format is sniffed
    /// from the leading bytes: a binary artifact (magic `BNFF`, loaded
    /// zero-copy and CRC-verified) or a JSON checkpoint.
    ///
    /// # Errors
    /// Returns [`ServeError::Model`] when the file fails any format
    /// validation, and a fold error when the model cannot be frozen.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| ModelError::Io(format!("reading {}: {e}", path.display())))?;
        let checkpoint = if bnff_artifact::is_artifact(&bytes) {
            Checkpoint::from_artifact(&Artifact::from_bytes(&bytes)?)?
        } else {
            let json = String::from_utf8(bytes).map_err(|_| {
                ModelError::Manifest(format!("{} is not UTF-8 JSON", path.display()))
            })?;
            Checkpoint::from_json(&json)?
        };
        Self::from_parts(&checkpoint.graph, &checkpoint.params, &checkpoint.running)
    }

    /// The frozen graph at its template batch size.
    pub fn template(&self) -> &Graph {
        &self.template
    }

    /// The folded parameters (shared by every stamped executor).
    pub fn params(&self) -> &Arc<FrozenParamSet> {
        &self.params
    }

    /// The per-sample input shape (`C × H × W`, batch stripped).
    pub fn sample_shape(&self) -> Result<Shape> {
        let shape = &self.template.node(self.input)?.output_shape;
        Ok(Shape::new(shape.dims()[1..].to_vec()))
    }

    /// Number of classifier outputs per sample.
    pub fn classes(&self) -> Result<usize> {
        let shape = &self.template.node(self.output)?.output_shape;
        shape.dim(shape.rank().saturating_sub(1)).map_err(ServeError::Tensor)
    }

    /// Stamps an executor bound to `batch` samples per forward pass.
    ///
    /// # Errors
    /// Returns an error when `batch` is zero or shape re-inference fails.
    pub fn executor(&self, batch: usize) -> Result<FrozenExecutor> {
        if batch == 0 {
            return Err(ServeError::InvalidArgument("batch size must be positive".into()));
        }
        let graph = self.rebatch(batch)?;
        FrozenExecutor::new(graph, Arc::clone(&self.params), self.input, self.output)
    }

    /// Rebuilds the template graph with a different batch dimension.
    fn rebatch(&self, batch: usize) -> Result<Graph> {
        let mut out = Graph::new(self.template.name().to_string());
        for node in self.template.nodes() {
            if node.inputs.is_empty() {
                let mut dims = node.output_shape.dims().to_vec();
                if dims.is_empty() {
                    return Err(ServeError::InvalidArgument(format!(
                        "input '{}' has no batch dimension",
                        node.name
                    )));
                }
                dims[0] = batch;
                out.add_input(&node.name, Shape::new(dims));
            } else {
                // Insertion order is topological (freeze builds it that
                // way), so every input already exists; `add_node` re-infers
                // the output shape at the new batch size.
                out.add_node(&node.name, node.op.clone(), node.inputs.clone())?;
            }
        }
        Ok(out)
    }
}
