//! The HTTP serving boundary: a [`ServeEngine`] behind five endpoints.
//!
//! | Endpoint           | Method | Behavior                                          |
//! |--------------------|--------|---------------------------------------------------|
//! | `/v1/infer`        | POST   | `{"sample": [f32; C·H·W]}` → classifier scores    |
//! | `/v1/metrics`      | GET    | [`ServeReport`](crate::ServeReport) JSON snapshot |
//! | `/metrics`         | GET    | Prometheus text exposition of the metrics registry|
//! | `/v1/healthz`      | GET    | liveness + drain state                            |
//! | `/v1/shutdown`     | POST   | graceful drain (the SIGTERM-equivalent)           |
//!
//! Every connection mints a process-unique request ID at ingress and
//! carries it through engine admission, so access-log lines
//! ([`HttpOptions::access_log`]) and trace echoes correlate. When the
//! engine samples a request for tracing (`BNFF_TRACE` / `trace_every`),
//! the infer response carries an `X-BNFF-Trace` header and a `trace`
//! JSON field with the span timings; untraced responses are byte-for-byte
//! what they were before tracing existed.
//!
//! Engine backpressure maps onto HTTP status codes, so standard clients and
//! load balancers react correctly without knowing the engine's error types:
//! [`ServeError::Overloaded`] → `429` (with `retry-after`),
//! [`ServeError::DeadlineExceeded`] → `504`, [`ServeError::ShuttingDown`] →
//! `503`, invalid samples and malformed JSON → `400`.
//!
//! The build environment has no signal-handling bindings (no `libc`), so
//! graceful shutdown is driven by `POST /v1/shutdown` instead of `SIGTERM`:
//! the server stops accepting, the engine drains — every admitted request
//! still receives its completion — and the workers exit. A process
//! supervisor maps its stop signal to that endpoint.
//!
//! Connections are handled one request per connection
//! (`Connection: close`), one thread per connection — matched to the
//! engine's own thread-per-worker scale rather than a reactor's.

use crate::engine::{RequestTrace, ServeEngine};
use crate::error::ServeError;
use crate::http::{read_request, write_response, HttpError, Request};
use crate::metrics::MetricsSnapshot;
use crate::Result;
use bnff_obs::{log::log_event, next_request_id};
use bnff_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The `content-type` of the Prometheus text exposition format.
const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// `POST /v1/infer` request body.
#[derive(Debug, Deserialize)]
struct InferRequest {
    /// The sample in row-major `C × H × W` order.
    sample: Vec<f32>,
}

/// `POST /v1/infer` success body.
#[derive(Debug, Serialize)]
struct InferResponse {
    scores: Vec<f32>,
    batch_size: usize,
    latency_us: u64,
}

/// `POST /v1/infer` success body when the engine sampled the request for
/// tracing. A separate struct (rather than an `Option<RequestTrace>` field
/// on [`InferResponse`]) keeps untraced responses byte-identical to what
/// they were before tracing existed.
#[derive(Debug, Serialize)]
struct TracedInferResponse {
    scores: Vec<f32>,
    batch_size: usize,
    latency_us: u64,
    trace: RequestTrace,
}

/// Error body for every non-200 response.
#[derive(Debug, Serialize)]
struct ErrorResponse {
    error: String,
}

/// `GET /v1/healthz` body.
#[derive(Debug, Serialize)]
struct HealthResponse {
    status: &'static str,
    draining: bool,
}

/// Behavioral knobs for [`HttpServer::bind_with`].
#[derive(Debug, Clone, Default)]
pub struct HttpOptions {
    /// Emit one logfmt line per handled request to stderr (method, path,
    /// status, wall micros, request ID).
    pub access_log: bool,
}

struct ServerShared {
    /// `None` once drained; handlers answer `503` from then on.
    engine: Mutex<Option<ServeEngine>>,
    draining: AtomicBool,
    sample_shape: Shape,
    addr: SocketAddr,
    access_log: bool,
    /// The drained engine's final metrics, kept so [`HttpServer::wait`]
    /// can hand them to the serve binary's shutdown summary even when the
    /// drain was triggered remotely via `POST /v1/shutdown`.
    final_report: Mutex<Option<MetricsSnapshot>>,
    /// In-flight connection count; incremented by the accept loop *before*
    /// spawning the handler so a drain cannot observe zero while a handler
    /// is still starting. [`HttpServer::wait`]/[`HttpServer::shutdown`]
    /// block on this reaching zero — otherwise the process could exit
    /// before the `POST /v1/shutdown` response bytes leave the socket.
    conns: Mutex<usize>,
    conns_cv: Condvar,
}

/// Decrements the in-flight connection count on drop (panic-safe).
struct ConnGuard(Arc<ServerShared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let mut count = self.0.conns.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *count = count.saturating_sub(1);
        drop(count);
        self.0.conns_cv.notify_all();
    }
}

impl ServerShared {
    fn lock_engine(&self) -> std::sync::MutexGuard<'_, Option<ServeEngine>> {
        self.engine.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Stops admissions and drains the engine. Idempotent; the first caller
    /// gets the final metrics (a copy is also parked for [`HttpServer::wait`]).
    fn drain(&self) -> Option<MetricsSnapshot> {
        self.draining.store(true, Ordering::SeqCst);
        let engine = self.lock_engine().take();
        let metrics = engine.map(ServeEngine::shutdown);
        if let Some(snapshot) = &metrics {
            let mut parked =
                self.final_report.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            *parked = Some(snapshot.clone());
        }
        // The accept loop only observes `draining` after `accept()`
        // returns; poke it with a throwaway connection so it exits.
        let _ = TcpStream::connect(self.addr);
        metrics
    }

    /// Blocks until every in-flight connection handler finishes (bounded
    /// by `timeout` as a hung-peer backstop).
    fn wait_connections(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut count = self.conns.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while *count > 0 {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            let (guard, _) = self
                .conns_cv
                .wait_timeout(count, remaining)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            count = guard;
        }
    }
}

/// A running HTTP server over a [`ServeEngine`].
///
/// Constructed by [`HttpServer::bind`]; the accept loop runs on its own
/// thread until `POST /v1/shutdown` arrives or [`HttpServer::shutdown`] is
/// called.
pub struct HttpServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("draining", &self.shared.draining.load(Ordering::SeqCst))
            .finish()
    }
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:8080"`, or port `0` for an ephemeral
    /// test port) and starts accepting requests against `engine`.
    ///
    /// # Errors
    /// Returns an error when the address cannot be bound or the model's
    /// sample shape cannot be resolved.
    pub fn bind(engine: ServeEngine, addr: &str) -> Result<Self> {
        Self::bind_with(engine, addr, HttpOptions::default())
    }

    /// [`HttpServer::bind`] with explicit [`HttpOptions`] (access logging).
    ///
    /// # Errors
    /// Returns an error when the address cannot be bound or the model's
    /// sample shape cannot be resolved.
    pub fn bind_with(engine: ServeEngine, addr: &str, options: HttpOptions) -> Result<Self> {
        let sample_shape = engine.sample_shape()?;
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServeError::InvalidArgument(format!("binding {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| ServeError::InvalidArgument(format!("resolving {addr}: {e}")))?;
        let shared = Arc::new(ServerShared {
            engine: Mutex::new(Some(engine)),
            draining: AtomicBool::new(false),
            sample_shape,
            addr: local,
            access_log: options.access_log,
            final_report: Mutex::new(None),
            conns: Mutex::new(0),
            conns_cv: Condvar::new(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("bnff-http-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawning the http accept thread");
        Ok(HttpServer { shared, addr: local, accept: Some(accept) })
    }

    /// The bound address (resolves port `0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Drains the engine and stops the accept loop — the programmatic twin
    /// of `POST /v1/shutdown`. Returns the engine's final metrics, or
    /// `None` when a drain already ran.
    pub fn shutdown(mut self) -> Option<MetricsSnapshot> {
        let metrics = self.shared.drain();
        self.join_accept();
        self.shared.wait_connections(Duration::from_secs(5));
        metrics
    }

    /// Blocks until the server drains — via `POST /v1/shutdown` or another
    /// thread calling [`HttpServer::shutdown`]. This is the serve binary's
    /// main-thread park. Returns the engine's final metrics (from whichever
    /// path triggered the drain) for a shutdown summary.
    pub fn wait(mut self) -> Option<MetricsSnapshot> {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        self.shared.drain();
        self.shared.wait_connections(Duration::from_secs(5));
        let mut parked =
            self.shared.final_report.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        parked.take()
    }

    fn join_accept(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shared.drain();
        self.join_accept();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        {
            let mut count = shared.conns.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            *count += 1;
        }
        // On spawn failure the closure (and the guard in it) is dropped by
        // the error path, which releases the count.
        let guard = ConnGuard(Arc::clone(shared));
        let _ = std::thread::Builder::new().name("bnff-http-conn".into()).spawn(move || {
            let guard = guard;
            handle_connection(&guard.0, stream);
        });
    }
}

fn handle_connection(shared: &ServerShared, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    let request_id = next_request_id();
    let began = Instant::now();
    let (parsed, (status, extra, body)) = match read_request(&mut reader) {
        Ok(Some(request)) => {
            let routed = route(shared, &request, request_id);
            (Some(request), routed)
        }
        Ok(None) => return,
        Err(HttpError::Closed) => return,
        Err(err @ HttpError::BodyTooLarge(_)) => {
            (None, (413, Vec::new(), error_body(&err.to_string())))
        }
        Err(err) => (None, (400, Vec::new(), error_body(&err.to_string()))),
    };
    let _ = write_response(&mut stream, status, &extra, &body);
    if shared.access_log {
        let (method, path) = match &parsed {
            Some(req) => (req.method.as_str(), req.path.as_str()),
            None => ("-", "-"),
        };
        log_event(
            "httpd",
            "access",
            &[
                ("method", method.to_string()),
                ("path", path.to_string()),
                ("status", status.to_string()),
                ("micros", began.elapsed().as_micros().to_string()),
                ("request_id", request_id.to_string()),
            ],
        );
    }
}

fn error_body(message: &str) -> String {
    serde_json::to_string(&ErrorResponse { error: message.to_string() })
        .unwrap_or_else(|_| "{\"error\":\"unserializable error\"}".to_string())
}

type Routed = (u16, Vec<(&'static str, String)>, String);

fn route(shared: &ServerShared, request: &Request, request_id: u64) -> Routed {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/infer") => infer(shared, request, request_id),
        ("GET", "/v1/metrics") => metrics(shared),
        ("GET", "/metrics") => prometheus(shared),
        ("GET", "/v1/healthz") => {
            let body =
                HealthResponse { status: "ok", draining: shared.draining.load(Ordering::SeqCst) };
            ok(&body)
        }
        ("POST", "/v1/shutdown") => {
            // Drain inline: every admitted request completes before the
            // response is written, so the caller's `curl` returning means
            // the engine is quiesced.
            shared.drain();
            (200, Vec::new(), "{\"status\":\"drained\"}".to_string())
        }
        (_, "/v1/infer" | "/v1/metrics" | "/metrics" | "/v1/healthz" | "/v1/shutdown") => {
            (405, Vec::new(), error_body("method not allowed"))
        }
        (_, path) => (404, Vec::new(), error_body(&format!("no such endpoint: {path}"))),
    }
}

fn ok<T: Serialize>(body: &T) -> Routed {
    match serde_json::to_string(body) {
        Ok(json) => (200, Vec::new(), json),
        Err(e) => (500, Vec::new(), error_body(&e.to_string())),
    }
}

fn metrics(shared: &ServerShared) -> Routed {
    let guard = shared.lock_engine();
    match guard.as_ref() {
        Some(engine) => {
            let report = engine.metrics().report(engine.uptime());
            drop(guard);
            ok(&report)
        }
        None => serve_error(&ServeError::ShuttingDown),
    }
}

/// `GET /metrics`: the registry rendered in Prometheus text exposition.
fn prometheus(shared: &ServerShared) -> Routed {
    let guard = shared.lock_engine();
    match guard.as_ref() {
        Some(engine) => {
            let body = engine.prometheus_metrics();
            drop(guard);
            (200, vec![("content-type", PROMETHEUS_CONTENT_TYPE.to_string())], body)
        }
        None => serve_error(&ServeError::ShuttingDown),
    }
}

fn infer(shared: &ServerShared, request: &Request, request_id: u64) -> Routed {
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => return (400, Vec::new(), error_body("request body is not UTF-8")),
    };
    let parsed: InferRequest = match serde_json::from_str(body) {
        Ok(parsed) => parsed,
        Err(e) => return (400, Vec::new(), error_body(&format!("bad infer request: {e}"))),
    };
    let expected = shared.sample_shape.volume();
    if parsed.sample.len() != expected {
        return (
            400,
            Vec::new(),
            error_body(&format!(
                "sample has {} values, model expects {expected} ({})",
                parsed.sample.len(),
                shared.sample_shape
            )),
        );
    }
    let sample = match Tensor::from_vec(shared.sample_shape.clone(), parsed.sample) {
        Ok(sample) => sample,
        Err(e) => return (400, Vec::new(), error_body(&e.to_string())),
    };

    // Hold the engine lock only across the (queue-push) submit; the wait
    // for the completion happens lock-free so concurrent requests batch.
    let receiver = {
        let guard = shared.lock_engine();
        match guard.as_ref() {
            Some(engine) => engine.submit_traced(sample, request_id, false),
            None => Err(ServeError::ShuttingDown),
        }
    };
    let completion = match receiver {
        Ok(rx) => match rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServeError::ShuttingDown),
        },
        Err(e) => Err(e),
    };
    match completion {
        Ok(completion) => {
            let scores = completion.scores.as_slice().to_vec();
            let latency_us = completion.latency.as_micros() as u64;
            match completion.trace {
                Some(trace) => {
                    let mut routed = ok(&TracedInferResponse {
                        scores,
                        batch_size: completion.batch_size,
                        latency_us,
                        trace: trace.clone(),
                    });
                    routed.1.push(("x-bnff-trace", trace_header(&trace)));
                    routed
                }
                None => {
                    ok(&InferResponse { scores, batch_size: completion.batch_size, latency_us })
                }
            }
        }
        Err(e) => serve_error(&e),
    }
}

/// Formats the `X-BNFF-Trace` response header value.
fn trace_header(trace: &RequestTrace) -> String {
    format!(
        "id={} queue_us={} infer_us={} batch={} worker={} stolen={}",
        trace.request_id,
        trace.queue_us,
        trace.infer_us,
        trace.batch_size,
        trace.worker,
        trace.stolen
    )
}

/// Maps an engine error onto its HTTP status + JSON body.
fn serve_error(err: &ServeError) -> Routed {
    let (status, extra): (u16, Vec<(&'static str, String)>) = match err {
        ServeError::Overloaded { .. } => (429, vec![("retry-after", "1".to_string())]),
        ServeError::DeadlineExceeded => (504, Vec::new()),
        ServeError::ShuttingDown => (503, Vec::new()),
        ServeError::InvalidArgument(_) => (400, Vec::new()),
        _ => (500, Vec::new()),
    };
    (status, extra, error_body(&err.to_string()))
}
