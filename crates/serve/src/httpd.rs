//! The HTTP serving boundary: a [`ServeEngine`] behind four endpoints.
//!
//! | Endpoint           | Method | Behavior                                          |
//! |--------------------|--------|---------------------------------------------------|
//! | `/v1/infer`        | POST   | `{"sample": [f32; C·H·W]}` → classifier scores    |
//! | `/v1/metrics`      | GET    | [`ServeReport`](crate::ServeReport) JSON snapshot |
//! | `/v1/healthz`      | GET    | liveness + drain state                            |
//! | `/v1/shutdown`     | POST   | graceful drain (the SIGTERM-equivalent)           |
//!
//! Engine backpressure maps onto HTTP status codes, so standard clients and
//! load balancers react correctly without knowing the engine's error types:
//! [`ServeError::Overloaded`] → `429` (with `retry-after`),
//! [`ServeError::DeadlineExceeded`] → `504`, [`ServeError::ShuttingDown`] →
//! `503`, invalid samples and malformed JSON → `400`.
//!
//! The build environment has no signal-handling bindings (no `libc`), so
//! graceful shutdown is driven by `POST /v1/shutdown` instead of `SIGTERM`:
//! the server stops accepting, the engine drains — every admitted request
//! still receives its completion — and the workers exit. A process
//! supervisor maps its stop signal to that endpoint.
//!
//! Connections are handled one request per connection
//! (`Connection: close`), one thread per connection — matched to the
//! engine's own thread-per-worker scale rather than a reactor's.

use crate::engine::ServeEngine;
use crate::error::ServeError;
use crate::http::{read_request, write_response, HttpError, Request};
use crate::metrics::LatencyRecorder;
use crate::Result;
use bnff_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// `POST /v1/infer` request body.
#[derive(Debug, Deserialize)]
struct InferRequest {
    /// The sample in row-major `C × H × W` order.
    sample: Vec<f32>,
}

/// `POST /v1/infer` success body.
#[derive(Debug, Serialize)]
struct InferResponse {
    scores: Vec<f32>,
    batch_size: usize,
    latency_us: u64,
}

/// Error body for every non-200 response.
#[derive(Debug, Serialize)]
struct ErrorResponse {
    error: String,
}

/// `GET /v1/healthz` body.
#[derive(Debug, Serialize)]
struct HealthResponse {
    status: &'static str,
    draining: bool,
}

struct ServerShared {
    /// `None` once drained; handlers answer `503` from then on.
    engine: Mutex<Option<ServeEngine>>,
    draining: AtomicBool,
    sample_shape: Shape,
    addr: SocketAddr,
}

impl ServerShared {
    fn lock_engine(&self) -> std::sync::MutexGuard<'_, Option<ServeEngine>> {
        self.engine.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Stops admissions and drains the engine. Idempotent; the first caller
    /// gets the final metrics.
    fn drain(&self) -> Option<LatencyRecorder> {
        self.draining.store(true, Ordering::SeqCst);
        let engine = self.lock_engine().take();
        let metrics = engine.map(ServeEngine::shutdown);
        // The accept loop only observes `draining` after `accept()`
        // returns; poke it with a throwaway connection so it exits.
        let _ = TcpStream::connect(self.addr);
        metrics
    }
}

/// A running HTTP server over a [`ServeEngine`].
///
/// Constructed by [`HttpServer::bind`]; the accept loop runs on its own
/// thread until `POST /v1/shutdown` arrives or [`HttpServer::shutdown`] is
/// called.
pub struct HttpServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("draining", &self.shared.draining.load(Ordering::SeqCst))
            .finish()
    }
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:8080"`, or port `0` for an ephemeral
    /// test port) and starts accepting requests against `engine`.
    ///
    /// # Errors
    /// Returns an error when the address cannot be bound or the model's
    /// sample shape cannot be resolved.
    pub fn bind(engine: ServeEngine, addr: &str) -> Result<Self> {
        let sample_shape = engine.sample_shape()?;
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServeError::InvalidArgument(format!("binding {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| ServeError::InvalidArgument(format!("resolving {addr}: {e}")))?;
        let shared = Arc::new(ServerShared {
            engine: Mutex::new(Some(engine)),
            draining: AtomicBool::new(false),
            sample_shape,
            addr: local,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("bnff-http-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawning the http accept thread");
        Ok(HttpServer { shared, addr: local, accept: Some(accept) })
    }

    /// The bound address (resolves port `0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Drains the engine and stops the accept loop — the programmatic twin
    /// of `POST /v1/shutdown`. Returns the engine's final metrics, or
    /// `None` when a drain already ran.
    pub fn shutdown(mut self) -> Option<LatencyRecorder> {
        let metrics = self.shared.drain();
        self.join_accept();
        metrics
    }

    /// Blocks until the server drains — via `POST /v1/shutdown` or another
    /// thread calling [`HttpServer::shutdown`]. This is the serve binary's
    /// main-thread park.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        self.shared.drain();
    }

    fn join_accept(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shared.drain();
        self.join_accept();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("bnff-http-conn".into())
            .spawn(move || handle_connection(&shared, stream));
    }
}

fn handle_connection(shared: &ServerShared, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    let (status, extra, body) = match read_request(&mut reader) {
        Ok(Some(request)) => route(shared, &request),
        Ok(None) => return,
        Err(HttpError::Closed) => return,
        Err(err @ HttpError::BodyTooLarge(_)) => (413, Vec::new(), error_body(&err.to_string())),
        Err(err) => (400, Vec::new(), error_body(&err.to_string())),
    };
    let _ = write_response(&mut stream, status, &extra, &body);
}

fn error_body(message: &str) -> String {
    serde_json::to_string(&ErrorResponse { error: message.to_string() })
        .unwrap_or_else(|_| "{\"error\":\"unserializable error\"}".to_string())
}

type Routed = (u16, Vec<(&'static str, String)>, String);

fn route(shared: &ServerShared, request: &Request) -> Routed {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/infer") => infer(shared, request),
        ("GET", "/v1/metrics") => metrics(shared),
        ("GET", "/v1/healthz") => {
            let body =
                HealthResponse { status: "ok", draining: shared.draining.load(Ordering::SeqCst) };
            ok(&body)
        }
        ("POST", "/v1/shutdown") => {
            // Drain inline: every admitted request completes before the
            // response is written, so the caller's `curl` returning means
            // the engine is quiesced.
            shared.drain();
            (200, Vec::new(), "{\"status\":\"drained\"}".to_string())
        }
        (_, "/v1/infer" | "/v1/metrics" | "/v1/healthz" | "/v1/shutdown") => {
            (405, Vec::new(), error_body("method not allowed"))
        }
        (_, path) => (404, Vec::new(), error_body(&format!("no such endpoint: {path}"))),
    }
}

fn ok<T: Serialize>(body: &T) -> Routed {
    match serde_json::to_string(body) {
        Ok(json) => (200, Vec::new(), json),
        Err(e) => (500, Vec::new(), error_body(&e.to_string())),
    }
}

fn metrics(shared: &ServerShared) -> Routed {
    let guard = shared.lock_engine();
    match guard.as_ref() {
        Some(engine) => {
            let report = engine.metrics().report(engine.uptime());
            drop(guard);
            ok(&report)
        }
        None => serve_error(&ServeError::ShuttingDown),
    }
}

fn infer(shared: &ServerShared, request: &Request) -> Routed {
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => return (400, Vec::new(), error_body("request body is not UTF-8")),
    };
    let parsed: InferRequest = match serde_json::from_str(body) {
        Ok(parsed) => parsed,
        Err(e) => return (400, Vec::new(), error_body(&format!("bad infer request: {e}"))),
    };
    let expected = shared.sample_shape.volume();
    if parsed.sample.len() != expected {
        return (
            400,
            Vec::new(),
            error_body(&format!(
                "sample has {} values, model expects {expected} ({})",
                parsed.sample.len(),
                shared.sample_shape
            )),
        );
    }
    let sample = match Tensor::from_vec(shared.sample_shape.clone(), parsed.sample) {
        Ok(sample) => sample,
        Err(e) => return (400, Vec::new(), error_body(&e.to_string())),
    };

    // Hold the engine lock only across the (queue-push) submit; the wait
    // for the completion happens lock-free so concurrent requests batch.
    let receiver = {
        let guard = shared.lock_engine();
        match guard.as_ref() {
            Some(engine) => engine.submit(sample),
            None => Err(ServeError::ShuttingDown),
        }
    };
    let completion = match receiver {
        Ok(rx) => match rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServeError::ShuttingDown),
        },
        Err(e) => Err(e),
    };
    match completion {
        Ok(completion) => ok(&InferResponse {
            scores: completion.scores.as_slice().to_vec(),
            batch_size: completion.batch_size,
            latency_us: completion.latency.as_micros() as u64,
        }),
        Err(e) => serve_error(&e),
    }
}

/// Maps an engine error onto its HTTP status + JSON body.
fn serve_error(err: &ServeError) -> Routed {
    let (status, extra): (u16, Vec<(&'static str, String)>) = match err {
        ServeError::Overloaded { .. } => (429, vec![("retry-after", "1".to_string())]),
        ServeError::DeadlineExceeded => (504, Vec::new()),
        ServeError::ShuttingDown => (503, Vec::new()),
        ServeError::InvalidArgument(_) => (400, Vec::new()),
        _ => (500, Vec::new()),
    };
    (status, extra, error_body(&err.to_string()))
}
