//! Concurrency stress suite for the sharded serving engine: many client
//! threads in open- and closed-loop mixes against a small frozen model,
//! asserting the engine's delivery contract — every admitted request is
//! answered exactly once with the right scores, shed-load errors appear
//! only when the bounded queues are genuinely full, deadlines expire
//! rather than serve stale work, and shutdown drains in-flight requests
//! instead of dropping them.

use bnff_graph::builder::GraphBuilder;
use bnff_graph::op::Conv2dAttrs;
use bnff_parallel::with_threads;
use bnff_serve::{BatchingConfig, FrozenModel, ServeEngine, ServeError};
use bnff_tensor::init::Initializer;
use bnff_tensor::{Shape, Tensor};
use bnff_train::Executor;
use std::sync::mpsc::TryRecvError;
use std::sync::OnceLock;
use std::time::Duration;

/// A small frozen classifier shared by every test (compiling it once keeps
/// the suite fast), plus distinct samples and their batch-1 reference
/// scores.
fn fixture() -> &'static (FrozenModel, Vec<Tensor>, Vec<Vec<u32>>) {
    static FIXTURE: OnceLock<(FrozenModel, Vec<Tensor>, Vec<Vec<u32>>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut b = GraphBuilder::new("stress-cls");
        let x = b.input("data", Shape::nchw(2, 3, 8, 8)).unwrap();
        let labels = b.input("labels", Shape::vector(2)).unwrap();
        let stem = b.conv_bn_relu(x, Conv2dAttrs::same_3x3(6), "stem").unwrap();
        let gap = b.global_avg_pool(stem, "gap").unwrap();
        let fc = b.fully_connected(gap, 3, "fc").unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        let mut exec = Executor::new(b.finish(), 7).unwrap();
        let mut init = Initializer::seeded(17);
        for _ in 0..2 {
            let data = init.uniform(Shape::nchw(2, 3, 8, 8), -1.0, 1.0);
            let fwd = exec.forward(&data, &[0, 1]).unwrap();
            exec.update_running_stats(&fwd).unwrap();
        }
        let model = ServeEngine::builder().executor(&exec).build_model().unwrap();
        let single = model.executor(1).unwrap();
        let mut sample_init = Initializer::seeded(91);
        let samples: Vec<Tensor> =
            (0..64).map(|_| sample_init.uniform(Shape::nchw(1, 3, 8, 8), -1.0, 1.0)).collect();
        let references: Vec<Vec<u32>> = samples
            .iter()
            .map(|s| single.infer(s).unwrap().as_slice().iter().map(|v| v.to_bits()).collect())
            .collect();
        (model, samples, references)
    })
}

/// Closed-loop clients under the queue capacity: every request must be
/// answered exactly once, bit-identical to its batch-1 reference, with
/// zero sheds — at kernel-thread budgets 1 and 4.
#[test]
fn closed_loop_clients_get_every_answer_exactly_once() {
    let (model, samples, references) = fixture();
    for threads in [1usize, 4] {
        let engine = with_threads(threads, || {
            ServeEngine::builder()
                .model(model.clone())
                .config(BatchingConfig {
                    max_batch: 4,
                    max_wait: Duration::from_millis(1),
                    workers: 3,
                    queue_depth: 16,
                    ..BatchingConfig::default()
                })
                .start()
                .unwrap()
        });
        let clients = 6usize;
        let per_client = 12usize;
        std::thread::scope(|s| {
            for client in 0..clients {
                let engine = &engine;
                s.spawn(move || {
                    for i in 0..per_client {
                        let idx = (client * per_client + i) % samples.len();
                        let rx = engine.submit(samples[idx].clone()).unwrap();
                        let completion = rx.recv().unwrap().unwrap();
                        assert_eq!(
                            completion
                                .scores
                                .as_slice()
                                .iter()
                                .map(|v| v.to_bits())
                                .collect::<Vec<_>>(),
                            references[idx],
                            "client {client} request {i}: wrong scores (threads {threads})"
                        );
                        assert!(completion.batch_size >= 1 && completion.batch_size <= 4);
                        // Exactly once: the channel must hold no second
                        // completion (the worker hung up after one send).
                        match rx.try_recv() {
                            Err(TryRecvError::Disconnected) | Err(TryRecvError::Empty) => {}
                            Ok(_) => panic!("duplicate completion delivered"),
                        }
                    }
                });
            }
        });
        let metrics = engine.shutdown();
        assert_eq!(metrics.requests(), clients * per_client, "threads {threads}: lost requests");
        assert_eq!(
            metrics.shed(),
            0,
            "threads {threads}: shed while closed-loop load was under capacity"
        );
        assert_eq!(metrics.expired(), 0);
    }
}

/// An open-loop burst far past the bounded queues: completions + sheds must
/// exactly account for every submission, sheds must actually occur, shed
/// errors must report a genuinely full engine, and every completion must
/// still be bit-correct.
#[test]
fn open_loop_burst_sheds_only_when_genuinely_full() {
    let (model, samples, references) = fixture();
    let engine = ServeEngine::builder()
        .model(model.clone())
        .config(BatchingConfig {
            max_batch: 2,
            // A long coalescing window keeps workers from draining the tiny
            // queues as fast as the burst fills them, making sheds
            // deterministic.
            max_wait: Duration::from_millis(40),
            workers: 2,
            queue_depth: 3,
            ..BatchingConfig::default()
        })
        .start()
        .unwrap();
    let capacity = engine.queue_capacity();
    assert_eq!(capacity, 6);
    let burst = 64usize;
    let mut receivers = Vec::new();
    let mut shed = 0usize;
    for i in 0..burst {
        match engine.submit(samples[i % samples.len()].clone()) {
            Ok(rx) => receivers.push((i % samples.len(), rx)),
            Err(ServeError::Overloaded { queued }) => {
                shed += 1;
                // A shed response must describe an engine at (or about to
                // leave) capacity, never an empty one.
                assert!(queued > 0, "shed with an empty engine");
            }
            Err(err) => panic!("unexpected submit error: {err}"),
        }
    }
    assert!(shed > 0, "burst of {burst} into capacity {capacity} must shed");
    let admitted = receivers.len();
    assert!(admitted >= capacity.min(burst), "admission refused below the bound");
    for (idx, rx) in receivers {
        let completion = rx.recv().unwrap().unwrap();
        assert_eq!(
            completion.scores.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            references[idx],
            "admitted request served wrong scores"
        );
    }
    let metrics = engine.shutdown();
    assert_eq!(metrics.requests() + metrics.shed(), burst, "requests + sheds must cover the burst");
    assert_eq!(metrics.requests(), admitted);
}

/// Mixed open/closed loop: firehose threads (tolerating sheds) racing
/// closed-loop threads — total accounting must still be exact and no
/// completion may be wrong or duplicated.
#[test]
fn mixed_open_and_closed_loop_accounting_is_exact() {
    let (model, samples, references) = fixture();
    let engine = ServeEngine::builder()
        .model(model.clone())
        .config(BatchingConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            workers: 2,
            queue_depth: 4,
            ..BatchingConfig::default()
        })
        .start()
        .unwrap();
    let completed = std::sync::atomic::AtomicUsize::new(0);
    let shed = std::sync::atomic::AtomicUsize::new(0);
    let submitted = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        // Two firehose threads blast without waiting.
        for f in 0..2 {
            let engine = &engine;
            let (completed, shed, submitted) = (&completed, &shed, &submitted);
            s.spawn(move || {
                let mut receivers = Vec::new();
                for i in 0..40 {
                    let idx = (f * 40 + i) % samples.len();
                    submitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    match engine.submit(samples[idx].clone()) {
                        Ok(rx) => receivers.push((idx, rx)),
                        Err(ServeError::Overloaded { .. }) => {
                            shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(err) => panic!("unexpected submit error: {err}"),
                    }
                }
                for (idx, rx) in receivers {
                    let completion = rx.recv().unwrap().unwrap();
                    assert_eq!(
                        completion
                            .scores
                            .as_slice()
                            .iter()
                            .map(|v| v.to_bits())
                            .collect::<Vec<_>>(),
                        references[idx]
                    );
                    completed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
        // Two polite closed-loop threads; sheds possible while the
        // firehoses hold the queues full, and must surface as Overloaded,
        // never as a hang or a wrong answer.
        for c in 0..2 {
            let engine = &engine;
            let (completed, shed, submitted) = (&completed, &shed, &submitted);
            s.spawn(move || {
                for i in 0..20 {
                    let idx = (c * 20 + i + 13) % samples.len();
                    submitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    match engine.submit(samples[idx].clone()) {
                        Ok(rx) => {
                            let completion = rx.recv().unwrap().unwrap();
                            assert_eq!(
                                completion
                                    .scores
                                    .as_slice()
                                    .iter()
                                    .map(|v| v.to_bits())
                                    .collect::<Vec<_>>(),
                                references[idx]
                            );
                            completed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(ServeError::Overloaded { .. }) => {
                            shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(err) => panic!("unexpected submit error: {err}"),
                    }
                }
            });
        }
    });
    let metrics = engine.shutdown();
    let completed = completed.load(std::sync::atomic::Ordering::Relaxed);
    let shed = shed.load(std::sync::atomic::Ordering::Relaxed);
    let submitted = submitted.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(completed + shed, submitted, "every submission must complete or shed");
    assert_eq!(metrics.requests(), completed, "engine metrics disagree with client counts");
    assert_eq!(metrics.shed(), shed);
}

/// Shutdown must drain: requests in flight when `shutdown` is called still
/// receive real completions, and submissions after it fail typed.
#[test]
fn graceful_shutdown_completes_in_flight_requests() {
    let (model, samples, references) = fixture();
    let engine = ServeEngine::builder()
        .model(model.clone())
        .config(BatchingConfig {
            max_batch: 4,
            // A long window guarantees requests are still queued (not yet
            // coalesced) when shutdown lands; drain-on-shutdown must cut
            // the wait short and serve them anyway.
            max_wait: Duration::from_millis(250),
            workers: 2,
            queue_depth: 64,
            ..BatchingConfig::default()
        })
        .start()
        .unwrap();
    let receivers: Vec<_> = (0..12)
        .map(|i| (i % samples.len(), engine.submit(samples[i % samples.len()].clone()).unwrap()))
        .collect();
    let metrics = engine.shutdown();
    for (idx, rx) in receivers {
        let completion = rx.recv().unwrap().unwrap();
        assert_eq!(
            completion.scores.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            references[idx],
            "in-flight request dropped or corrupted by shutdown"
        );
    }
    assert_eq!(metrics.requests(), 12, "shutdown lost in-flight requests");

    // After shutdown the engine object is gone (consumed); a fresh engine's
    // post-stop behaviour is covered through drop + submit in
    // freeze_equivalence. Here: an engine mid-drop refuses politely.
    let engine = ServeEngine::builder()
        .model(model.clone())
        .config(BatchingConfig::default())
        .start()
        .unwrap();
    let metrics = engine.shutdown();
    assert_eq!(metrics.requests(), 0);
}

/// Deadline-based expiry: a zero deadline expires every queued request
/// (typed, counted), a generous one expires none.
#[test]
fn deadlines_expire_requests_instead_of_serving_stale_work() {
    let (model, samples, _references) = fixture();
    let engine = ServeEngine::builder()
        .model(model.clone())
        .config(BatchingConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(30),
            workers: 1,
            queue_depth: 64,
            deadline: Some(Duration::ZERO),
            ..BatchingConfig::default()
        })
        .start()
        .unwrap();
    let receivers: Vec<_> =
        (0..8).map(|i| engine.submit(samples[i % samples.len()].clone()).unwrap()).collect();
    let mut expired = 0usize;
    let mut served = 0usize;
    for rx in receivers {
        match rx.recv().unwrap() {
            Err(ServeError::DeadlineExceeded) => expired += 1,
            Ok(_) => served += 1,
            Err(err) => panic!("unexpected error: {err}"),
        }
    }
    // A zero deadline can in principle race a worker to the very first
    // submission; in practice every request must be accounted for and the
    // overwhelming majority expire.
    assert_eq!(expired + served, 8);
    assert!(expired > 0, "zero deadline expired nothing");
    let metrics = engine.shutdown();
    assert_eq!(metrics.expired(), expired);

    let engine = ServeEngine::builder()
        .model(model.clone())
        .config(BatchingConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            workers: 2,
            deadline: Some(Duration::from_secs(30)),
            ..BatchingConfig::default()
        })
        .start()
        .unwrap();
    for i in 0..8 {
        engine.infer_blocking(samples[i % samples.len()].clone()).unwrap();
    }
    let metrics = engine.shutdown();
    assert_eq!(metrics.expired(), 0, "a generous deadline must expire nothing");
    assert_eq!(metrics.requests(), 8);
}

/// The engine must reject nonsensical configurations with a typed error
/// rather than spawning a broken pool.
#[test]
fn zero_bounds_are_rejected() {
    let (model, _samples, _references) = fixture();
    for config in [
        BatchingConfig { max_batch: 0, ..BatchingConfig::default() },
        BatchingConfig { workers: 0, ..BatchingConfig::default() },
        BatchingConfig { executor_cache: 0, ..BatchingConfig::default() },
        BatchingConfig { queue_depth: 0, ..BatchingConfig::default() },
    ] {
        assert!(matches!(
            ServeEngine::builder().model(model.clone()).config(config).start(),
            Err(ServeError::InvalidArgument(_))
        ));
    }
}

/// Kernel budgets partition the thread budget disjointly across workers.
#[test]
fn kernel_budgets_partition_the_thread_budget() {
    let (model, _samples, _references) = fixture();
    let engine = ServeEngine::builder()
        .model(model.clone())
        .config(BatchingConfig { workers: 3, kernel_threads: 7, ..BatchingConfig::default() })
        .start()
        .unwrap();
    assert_eq!(engine.kernel_budgets(), &[3, 2, 2]);
    drop(engine);
    // kernel_threads = 0 inherits the caller's scoped override.
    let engine = with_threads(5, || {
        ServeEngine::builder()
            .model(model.clone())
            .config(BatchingConfig { workers: 2, ..BatchingConfig::default() })
            .start()
            .unwrap()
    });
    assert_eq!(engine.kernel_budgets(), &[3, 2]);
}
