//! End-to-end tests of the HTTP serving boundary: correctness of
//! `/v1/infer` against direct frozen execution, backpressure → status-code
//! mapping (429/504), malformed input handling, and graceful drain.

use bnff_graph::builder::GraphBuilder;
use bnff_graph::op::Conv2dAttrs;
use bnff_graph::Graph;
use bnff_serve::{HttpServer, ServeEngine};
use bnff_tensor::init::Initializer;
use bnff_tensor::Shape;
use bnff_train::Executor;
use serde::Deserialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn classifier(batch: usize, classes: usize) -> Graph {
    let mut b = GraphBuilder::new("http-cls");
    let x = b.input("data", Shape::nchw(batch, 3, 6, 6)).unwrap();
    let labels = b.input("labels", Shape::vector(batch)).unwrap();
    let stem = b.conv_bn_relu(x, Conv2dAttrs::same_3x3(4), "stem").unwrap();
    let gap = b.global_avg_pool(stem, "gap").unwrap();
    let fc = b.fully_connected(gap, classes, "fc").unwrap();
    b.softmax_loss(fc, labels, "loss").unwrap();
    b.finish()
}

/// A trained executor whose running statistics moved off identity.
fn trained(seed: u64) -> Executor {
    let mut exec = Executor::new(classifier(2, 3), seed).unwrap();
    let mut init = Initializer::seeded(seed ^ 0xbeef);
    let data = init.uniform(Shape::nchw(2, 3, 6, 6), -1.0, 1.0);
    let fwd = exec.forward(&data, &[0, 1]).unwrap();
    exec.update_running_stats(&fwd).unwrap();
    exec
}

/// One-shot HTTP client: sends a request, returns (status, headers, body).
fn http(addr: SocketAddr, raw: &str) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connecting to the test server");
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body separator");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line.split_whitespace().nth(1).expect("status code").parse().unwrap();
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, String) {
    http(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Vec<(String, String)>, String) {
    http(
        addr,
        &format!("POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}", body.len()),
    )
}

fn infer_body(sample: &[f32]) -> String {
    let values = serde_json::to_string(&sample.to_vec()).unwrap();
    format!("{{\"sample\":{values}}}")
}

#[derive(Debug, Deserialize)]
struct InferResponse {
    scores: Vec<f32>,
    batch_size: usize,
    latency_us: u64,
}

#[derive(Debug, Deserialize)]
struct TraceBody {
    request_id: u64,
    queue_us: u64,
    infer_us: u64,
    batch_size: usize,
    worker: usize,
    stolen: bool,
}

#[derive(Debug, Deserialize)]
struct TracedInferResponse {
    scores: Vec<f32>,
    batch_size: usize,
    latency_us: u64,
    trace: TraceBody,
}

#[test]
fn infer_matches_direct_frozen_execution_exactly() {
    let exec = trained(7);
    let model = ServeEngine::builder().executor(&exec).build_model().unwrap();
    let engine = ServeEngine::builder().executor(&exec).workers(1).start().unwrap();
    let server = HttpServer::bind(engine, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let single = model.executor(1).unwrap();
    let mut init = Initializer::seeded(99);
    for _ in 0..3 {
        let sample = init.uniform(Shape::nchw(1, 3, 6, 6), -1.0, 1.0);
        let expected = single.infer(&sample).unwrap();

        let (status, _, body) = post(addr, "/v1/infer", &infer_body(sample.as_slice()));
        assert_eq!(status, 200, "body: {body}");
        let parsed: InferResponse = serde_json::from_str(&body).unwrap();
        assert!(parsed.batch_size >= 1);
        let _ = parsed.latency_us;
        // Scores cross the JSON boundary bit-identically: the engine's
        // numerics are batching-invariant and f32s serialize in shortest
        // round-trip decimal form.
        let expected_bits: Vec<u32> = expected.as_slice().iter().map(|v| v.to_bits()).collect();
        let got_bits: Vec<u32> = parsed.scores.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got_bits, expected_bits);
    }
    server.shutdown();
}

#[test]
fn healthz_metrics_and_routing() {
    let exec = trained(13);
    let engine = ServeEngine::builder().executor(&exec).start().unwrap();
    let server = HttpServer::bind(engine, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let (status, _, body) = get(addr, "/v1/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""));
    assert!(body.contains("\"draining\":false"));

    // Serve one request so the metrics have something to report.
    let mut init = Initializer::seeded(5);
    let sample = init.uniform(Shape::nchw(1, 3, 6, 6), -1.0, 1.0);
    let (status, _, _) = post(addr, "/v1/infer", &infer_body(sample.as_slice()));
    assert_eq!(status, 200);

    let (status, _, body) = get(addr, "/v1/metrics");
    assert_eq!(status, 200, "body: {body}");
    let report: bnff_serve::ServeReport = serde_json::from_str(&body).unwrap();
    assert!(report.requests >= 1);
    assert!(report.throughput_rps > 0.0);

    let (status, _, _) = get(addr, "/nope");
    assert_eq!(status, 404);
    let (status, _, _) = get(addr, "/v1/infer");
    assert_eq!(status, 405);
    server.shutdown();
}

#[test]
fn prometheus_endpoint_exposes_the_registry() {
    let exec = trained(37);
    let engine = ServeEngine::builder().executor(&exec).start().unwrap();
    let server = HttpServer::bind(engine, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let mut init = Initializer::seeded(6);
    let sample = init.uniform(Shape::nchw(1, 3, 6, 6), -1.0, 1.0);
    let (status, _, _) = post(addr, "/v1/infer", &infer_body(sample.as_slice()));
    assert_eq!(status, 200);

    let (status, headers, body) = get(addr, "/metrics");
    assert_eq!(status, 200, "body: {body}");
    let content_type = headers
        .iter()
        .find(|(k, _)| k == "content-type")
        .map(|(_, v)| v.as_str())
        .expect("content-type header");
    assert!(content_type.starts_with("text/plain"), "got {content_type}");

    // Well-formed exposition: HELP/TYPE pairs, the core serving series,
    // a cumulative histogram ending at +Inf, and no JSON anywhere.
    assert!(body.contains("# TYPE bnff_requests_total counter"));
    assert!(body.contains("bnff_requests_total 1"));
    assert!(body.contains("# TYPE bnff_request_latency_seconds histogram"));
    assert!(body.contains("le=\"+Inf\""));
    assert!(body.contains("bnff_request_latency_seconds_count 1"));
    assert!(body.contains("# TYPE bnff_queued gauge"));
    assert!(body.contains("# TYPE bnff_shed_total counter"));
    for line in body.lines() {
        assert!(
            line.starts_with('#') || line.split_whitespace().count() == 2 || line.is_empty(),
            "malformed exposition line: {line:?}"
        );
    }

    let (status, _, _) = post(addr, "/metrics", "");
    assert_eq!(status, 405);
    server.shutdown();
}

#[test]
fn traced_requests_echo_span_timings() {
    let exec = trained(41);
    let engine = ServeEngine::builder().executor(&exec).workers(1).trace_every(1).start().unwrap();
    let server = HttpServer::bind(engine, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let mut init = Initializer::seeded(8);
    let sample = init.uniform(Shape::nchw(1, 3, 6, 6), -1.0, 1.0);
    let (status, headers, body) = post(addr, "/v1/infer", &infer_body(sample.as_slice()));
    assert_eq!(status, 200, "body: {body}");

    let parsed: TracedInferResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(parsed.scores.len(), 3);
    assert!(parsed.batch_size >= 1);
    assert!(parsed.latency_us >= parsed.trace.infer_us);
    assert!(parsed.trace.request_id > 0);
    assert_eq!(parsed.trace.batch_size, parsed.batch_size);
    assert_eq!(parsed.trace.worker, 0);
    assert!(!parsed.trace.stolen);
    let _ = parsed.trace.queue_us;

    let header = headers
        .iter()
        .find(|(k, _)| k == "x-bnff-trace")
        .map(|(_, v)| v.as_str())
        .expect("x-bnff-trace header on a traced response");
    assert!(header.contains(&format!("id={}", parsed.trace.request_id)));
    assert!(header.contains("infer_us="));
    server.shutdown();
}

#[test]
fn untraced_responses_have_no_trace_artifacts() {
    let exec = trained(43);
    // trace_every(0) disables sampling outright, regardless of BNFF_TRACE.
    let engine = ServeEngine::builder().executor(&exec).trace_every(0).start().unwrap();
    let server = HttpServer::bind(engine, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let mut init = Initializer::seeded(9);
    let sample = init.uniform(Shape::nchw(1, 3, 6, 6), -1.0, 1.0);
    let (status, headers, body) = post(addr, "/v1/infer", &infer_body(sample.as_slice()));
    assert_eq!(status, 200, "body: {body}");
    assert!(!body.contains("\"trace\""));
    assert!(headers.iter().all(|(k, _)| k != "x-bnff-trace"));
    server.shutdown();
}

#[test]
fn malformed_requests_are_400s() {
    let exec = trained(17);
    let engine = ServeEngine::builder().executor(&exec).start().unwrap();
    let server = HttpServer::bind(engine, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Not JSON at all.
    let (status, _, body) = post(addr, "/v1/infer", "this is not json");
    assert_eq!(status, 400, "body: {body}");
    // JSON, wrong schema.
    let (status, _, _) = post(addr, "/v1/infer", "{\"smaple\": [1.0]}");
    assert_eq!(status, 400);
    // Right schema, wrong sample length.
    let (status, _, body) = post(addr, "/v1/infer", "{\"sample\": [1.0, 2.0]}");
    assert_eq!(status, 400);
    assert!(body.contains("108"), "error names the expected volume: {body}");
    // Malformed HTTP framing.
    let (status, _, _) = http(addr, "BROKEN\r\n\r\n");
    assert_eq!(status, 400);
    server.shutdown();
}

#[test]
fn overload_is_shed_with_429_and_retry_after() {
    let exec = trained(19);
    // One worker, one queue slot, a max_wait long enough that the first
    // request is still dwelling (and so still occupying the only slot)
    // when the second arrives: deterministic shed.
    let engine = ServeEngine::builder()
        .executor(&exec)
        .workers(1)
        .queue_depth(1)
        .max_batch(64)
        .max_wait(Duration::from_millis(400))
        .start()
        .unwrap();
    let server = HttpServer::bind(engine, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let mut init = Initializer::seeded(3);
    let sample = init.uniform(Shape::nchw(1, 3, 6, 6), -1.0, 1.0);
    let body = infer_body(sample.as_slice());

    let first = {
        let body = body.clone();
        std::thread::spawn(move || post(addr, "/v1/infer", &body))
    };
    // Let the first request reach the queue and start dwelling.
    std::thread::sleep(Duration::from_millis(100));
    let (status, headers, _) = post(addr, "/v1/infer", &body);
    assert_eq!(status, 429);
    assert!(headers.iter().any(|(k, v)| k == "retry-after" && !v.is_empty()));

    let (status, _, _) = first.join().unwrap();
    assert_eq!(status, 200, "the dwelling request must still be served");
    server.shutdown();
}

#[test]
fn expired_deadlines_are_504s() {
    let exec = trained(23);
    // A zero deadline expires every queued request at the worker's next
    // take: deterministic 504.
    let engine =
        ServeEngine::builder().executor(&exec).workers(1).deadline(Duration::ZERO).start().unwrap();
    let server = HttpServer::bind(engine, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let mut init = Initializer::seeded(4);
    let sample = init.uniform(Shape::nchw(1, 3, 6, 6), -1.0, 1.0);
    let (status, _, body) = post(addr, "/v1/infer", &infer_body(sample.as_slice()));
    assert_eq!(status, 504, "body: {body}");
    assert!(body.contains("deadline"));
    server.shutdown();
}

#[test]
fn shutdown_endpoint_drains_and_stops_the_server() {
    let exec = trained(29);
    let engine = ServeEngine::builder().executor(&exec).start().unwrap();
    let server = HttpServer::bind(engine, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let (status, _, body) = post(addr, "/v1/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("drained"));
    assert!(server.is_draining());

    // The accept loop exits; new connections are refused (a still-parked
    // connection may get one last 503, so poll briefly).
    let mut refused = false;
    for _ in 0..50 {
        match TcpStream::connect(addr) {
            Err(_) => {
                refused = true;
                break;
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(refused, "connections must eventually be refused after drain");
    // wait() returns immediately on an already-drained server.
    server.wait();
}

#[test]
fn concurrent_clients_all_get_correct_scores() {
    let exec = trained(31);
    let model = ServeEngine::builder().executor(&exec).build_model().unwrap();
    let engine = ServeEngine::builder().executor(&exec).workers(2).max_batch(4).start().unwrap();
    let server = HttpServer::bind(engine, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let single = model.executor(1).unwrap();

    let clients: Vec<_> = (0..8)
        .map(|i| {
            let mut init = Initializer::seeded(1000 + i);
            let sample = init.uniform(Shape::nchw(1, 3, 6, 6), -1.0, 1.0);
            let expected: Vec<u32> =
                single.infer(&sample).unwrap().as_slice().iter().map(|v| v.to_bits()).collect();
            let body = infer_body(sample.as_slice());
            std::thread::spawn(move || {
                let (status, _, response) = post(addr, "/v1/infer", &body);
                assert_eq!(status, 200, "client {i}: {response}");
                let parsed: InferResponse = serde_json::from_str(&response).unwrap();
                let got: Vec<u32> = parsed.scores.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, expected, "client {i} got wrong scores");
            })
        })
        .collect();
    for client in clients {
        client.join().unwrap();
    }

    let report = server.shutdown().expect("first drain returns metrics");
    assert_eq!(report.requests(), 8);
}
