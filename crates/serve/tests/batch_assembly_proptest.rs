//! Property tests for sharded batch assembly: for arbitrary arrival
//! orders, shard counts and batch bounds, every submitted request must be
//! answered exactly once, and every answer must be bit-identical to the
//! same sample inferred alone at batch 1 — the coalescing path is not
//! allowed to perturb numerics no matter how requests land in the queues.

use bnff_graph::builder::GraphBuilder;
use bnff_graph::op::Conv2dAttrs;
use bnff_parallel::with_threads;
use bnff_serve::{BatchingConfig, FrozenModel, ServeEngine};
use bnff_tensor::init::Initializer;
use bnff_tensor::{Shape, Tensor};
use bnff_train::Executor;
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::Duration;

/// Shared frozen model, request pool, and per-sample batch-1 bit patterns.
fn fixture() -> &'static (FrozenModel, Vec<Tensor>, Vec<Vec<u32>>) {
    static FIXTURE: OnceLock<(FrozenModel, Vec<Tensor>, Vec<Vec<u32>>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut b = GraphBuilder::new("assembly-cls");
        let x = b.input("data", Shape::nchw(2, 3, 6, 6)).unwrap();
        let labels = b.input("labels", Shape::vector(2)).unwrap();
        let stem = b.conv_bn_relu(x, Conv2dAttrs::same_3x3(4), "stem").unwrap();
        let gap = b.global_avg_pool(stem, "gap").unwrap();
        let fc = b.fully_connected(gap, 3, "fc").unwrap();
        b.softmax_loss(fc, labels, "loss").unwrap();
        let mut exec = Executor::new(b.finish(), 3).unwrap();
        let mut init = Initializer::seeded(29);
        for _ in 0..2 {
            let data = init.uniform(Shape::nchw(2, 3, 6, 6), -1.0, 1.0);
            let fwd = exec.forward(&data, &[0, 1]).unwrap();
            exec.update_running_stats(&fwd).unwrap();
        }
        let model = ServeEngine::builder().executor(&exec).build_model().unwrap();
        let single = model.executor(1).unwrap();
        let mut sample_init = Initializer::seeded(101);
        let samples: Vec<Tensor> =
            (0..24).map(|_| sample_init.uniform(Shape::nchw(1, 3, 6, 6), -1.0, 1.0)).collect();
        let references: Vec<Vec<u32>> = samples
            .iter()
            .map(|s| single.infer(s).unwrap().as_slice().iter().map(|v| v.to_bits()).collect())
            .collect();
        (model, samples, references)
    })
}

/// A deterministic permutation of `0..n` from a seed — the shim has no
/// shuffle strategy, so derive one by sorting random sort keys.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut keyed: Vec<(u64, usize)> = (0..n)
        .map(|i| {
            let mut z = seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            (z ^ (z >> 27), i)
        })
        .collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, i)| i).collect()
}

proptest! {
    /// Arbitrary (shard count, batch bound, arrival order, request count):
    /// exactly-once delivery, bit-identity to batch-1, exact accounting —
    /// at kernel-thread budgets 1 and 4.
    #[test]
    fn any_arrival_order_is_exactly_once_and_bit_identical(
        case in (1usize..5, 1usize..7, 1usize..25, 0usize..1_000_000)
    ) {
        let (workers, max_batch, requests, seed) = (case.0, case.1, case.2, case.3 as u64);
        let (model, samples, references) = fixture();
        let order = permutation(requests, seed);
        for threads in [1usize, 4] {
            let engine = with_threads(threads, || {
                ServeEngine::builder().model(model.clone()).config(BatchingConfig {
                        max_batch,
                        max_wait: Duration::from_micros(200),
                        workers,
                        // Deep enough that admission never sheds: the
                        // property under test is assembly, not shedding.
                        queue_depth: requests.max(1),
                        ..BatchingConfig::default()
                    }).start()
                .unwrap()
            });
            let receivers: Vec<_> = order
                .iter()
                .map(|&i| (i, engine.submit(samples[i].clone()).unwrap()))
                .collect();
            for (i, rx) in receivers {
                let completion = rx.recv().unwrap().unwrap();
                prop_assert!(completion.batch_size >= 1 && completion.batch_size <= max_batch);
                let bits: Vec<u32> =
                    completion.scores.as_slice().iter().map(|v| v.to_bits()).collect();
                prop_assert!(
                    bits == references[i],
                    "workers {} max_batch {} threads {}: sample {} diverged from batch-1",
                    workers, max_batch, threads, i
                );
                // Exactly once: the worker sends one completion then hangs up.
                prop_assert!(rx.recv().is_err(), "duplicate completion for sample {}", i);
            }
            let metrics = engine.shutdown();
            prop_assert_eq!(metrics.requests(), requests);
            prop_assert_eq!(metrics.shed(), 0usize);
            prop_assert_eq!(metrics.expired(), 0usize);
        }
    }
}
