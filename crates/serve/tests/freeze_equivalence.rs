//! Freeze/fold equivalence: a frozen graph must reproduce the training
//! executor's *eval-mode* (running-statistics) forward pass within 1e-5,
//! bit-identically across thread counts, at every measured fusion level —
//! and the dynamic batcher must return the same scores whether a request
//! runs alone or coalesced into a full batch.

use bnff_core::{BnffOptimizer, FusionLevel};
use bnff_graph::builder::GraphBuilder;
use bnff_graph::op::Conv2dAttrs;
use bnff_graph::Graph;
use bnff_parallel::with_threads;
use bnff_serve::{BatchingConfig, FrozenModel, ServeEngine};
use bnff_tensor::init::Initializer;
use bnff_tensor::{Shape, Tensor};
use bnff_train::checkpoint::Checkpoint;
use bnff_train::params::NodeParams;
use bnff_train::validate::score_divergence;
use bnff_train::Executor;
use std::time::Duration;

/// A classifier exercising every structural case the freeze pass handles:
/// foldable BN chains, a BN behind a Concat (unfoldable → ChannelAffine),
/// an element-wise sum, pooling and an FC head.
fn classifier(batch: usize, classes: usize) -> Graph {
    let mut b = GraphBuilder::new("serve-cls");
    let x = b.input("data", Shape::nchw(batch, 3, 8, 8)).unwrap();
    let labels = b.input("labels", Shape::vector(batch)).unwrap();
    let stem = b.conv_bn_relu(x, Conv2dAttrs::same_3x3(8), "stem").unwrap();
    let c1 = b.bn_relu_conv(stem, Conv2dAttrs::pointwise(16), "cpl/a").unwrap();
    let c2 = b.bn_relu_conv(c1, Conv2dAttrs::same_3x3(8), "cpl/b").unwrap();
    let sum = b.eltwise_sum(vec![stem, c2], "sum").unwrap();
    let cat = b.concat(vec![stem, sum], "concat").unwrap();
    let bn = b.batch_norm_default(cat, "tailbn").unwrap();
    let r = b.relu(bn, "tailrelu").unwrap();
    let gap = b.global_avg_pool(r, "gap").unwrap();
    let fc = b.fully_connected(gap, classes, "fc").unwrap();
    b.softmax_loss(fc, labels, "loss").unwrap();
    b.finish()
}

/// Nudges every γ/β off its identity initialization so the fold actually
/// has scales and shifts to get wrong.
fn perturb_bn_params(exec: &mut Executor) {
    let mut k = 0usize;
    for (_, params) in exec.params_mut().iter_mut() {
        let bn = match params {
            NodeParams::Bn(bn) => bn,
            NodeParams::ConvBn { bn, .. } => bn,
            _ => continue,
        };
        for (ci, (g, b)) in bn.gamma.iter_mut().zip(bn.beta.iter_mut()).enumerate() {
            *g = 1.0 + 0.2 * ((k + ci) as f32 * 0.7).sin();
            *b = 0.1 * ((k + ci) as f32 * 1.3).cos();
        }
        k += 17;
    }
}

/// An executor with moved running statistics and non-identity γ/β.
fn conditioned_executor(graph: Graph, seed: u64) -> (Executor, Tensor, Vec<usize>) {
    let batch = graph
        .input_nodes()
        .iter()
        .find_map(|id| {
            let shape = &graph.node(*id).unwrap().output_shape;
            shape.is_nchw().then(|| shape.n())
        })
        .unwrap();
    let mut exec = Executor::new(graph, seed).unwrap();
    perturb_bn_params(&mut exec);
    let mut init = Initializer::seeded(seed ^ 0x5eed);
    let labels: Vec<usize> = (0..batch).map(|i| i % 3).collect();
    let mut data = Tensor::zeros(Shape::scalar());
    for step in 0..2 {
        data = init.uniform(
            exec.graph().node(exec.graph().input_nodes()[0]).unwrap().output_shape.clone(),
            -1.0,
            1.0,
        );
        let _ = step;
        let fwd = exec.forward(&data, &labels).unwrap();
        exec.update_running_stats(&fwd).unwrap();
    }
    (exec, data, labels)
}

#[test]
fn frozen_matches_eval_at_every_measured_fusion_level() {
    let baseline = classifier(4, 3);
    for level in FusionLevel::measured() {
        let graph = BnffOptimizer::new(level).apply(&baseline).unwrap();
        let (exec, data, labels) = conditioned_executor(graph, 11 + level as u64);
        let eval = exec.forward_eval(&data, &labels).unwrap();
        let model = ServeEngine::builder().executor(&exec).build_model().unwrap();
        let frozen = model.executor(4).unwrap();
        let scores = frozen.infer(&data).unwrap();
        let div = score_divergence(&eval.scores, &scores).unwrap();
        assert!(div < 1e-5, "{level}: frozen diverges from eval by {div}");
        // A second inference over recycled arena buffers must not drift.
        let again = frozen.infer(&data).unwrap();
        assert_eq!(scores.as_slice(), again.as_slice(), "{level}: arena reuse drifted");
    }
}

#[test]
fn frozen_inference_is_bit_identical_across_thread_counts() {
    let (exec, data, _labels) = conditioned_executor(classifier(4, 3), 23);
    let model = ServeEngine::builder().executor(&exec).build_model().unwrap();
    let reference: Vec<u32> = with_threads(1, || {
        model
            .executor(4)
            .unwrap()
            .infer(&data)
            .unwrap()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect()
    });
    for threads in [2usize, 4, 7] {
        let bits: Vec<u32> = with_threads(threads, || {
            model
                .executor(4)
                .unwrap()
                .infer(&data)
                .unwrap()
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        });
        assert_eq!(bits, reference, "threads={threads} changed the frozen scores");
    }
}

#[test]
fn batch_of_one_equals_coalesced_batch() {
    let (exec, data, _labels) = conditioned_executor(classifier(4, 3), 31);
    let model = ServeEngine::builder().executor(&exec).build_model().unwrap();
    let single = model.executor(1).unwrap();
    let full = model.executor(4).unwrap();
    let batched = full.infer(&data).unwrap();
    let classes = model.classes().unwrap();
    let sample_volume = data.len() / 4;
    for i in 0..4 {
        let sample = Tensor::from_vec(
            Shape::nchw(1, 3, 8, 8),
            data.as_slice()[i * sample_volume..(i + 1) * sample_volume].to_vec(),
        )
        .unwrap();
        let alone = single.infer(&sample).unwrap();
        let row = &batched.as_slice()[i * classes..(i + 1) * classes];
        assert_eq!(
            alone.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "sample {i} differs between batch-1 and batch-4"
        );
    }
}

#[test]
fn checkpoint_freeze_round_trip_serves_identically() {
    let (exec, data, _labels) = conditioned_executor(classifier(4, 3), 41);
    let direct = ServeEngine::builder().executor(&exec).build_model().unwrap();
    let ckpt = Checkpoint::capture(&exec);
    let restored = Checkpoint::from_json(&ckpt.to_json().unwrap()).unwrap();
    let via_checkpoint = ServeEngine::builder().checkpoint(&restored).build_model().unwrap();
    let a = direct.executor(4).unwrap().infer(&data).unwrap();
    let b = via_checkpoint.executor(4).unwrap().infer(&data).unwrap();
    assert_eq!(a.as_slice(), b.as_slice(), "checkpoint round trip changed the frozen scores");
}

#[test]
fn engine_serves_correct_scores_under_concurrent_load() {
    let (exec, _data, _labels) = conditioned_executor(classifier(4, 3), 53);
    let model = ServeEngine::builder().executor(&exec).build_model().unwrap();
    let single = model.executor(1).unwrap();

    // Reference scores for 16 distinct samples.
    let mut init = Initializer::seeded(99);
    let samples: Vec<Tensor> =
        (0..16).map(|_| init.uniform(Shape::nchw(1, 3, 8, 8), -1.0, 1.0)).collect();
    let references: Vec<Vec<f32>> =
        samples.iter().map(|s| single.infer(s).unwrap().as_slice().to_vec()).collect();

    let engine = ServeEngine::builder()
        .model(model)
        .config(BatchingConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(5),
            workers: 2,
            executor_cache: 4,
            ..BatchingConfig::default()
        })
        .start()
        .unwrap();

    // Submit everything up front so the batcher has a chance to coalesce,
    // then await all completions.
    let receivers: Vec<_> = samples.iter().map(|s| engine.submit(s.clone()).unwrap()).collect();
    for (i, rx) in receivers.into_iter().enumerate() {
        let completion = rx.recv().unwrap().unwrap();
        assert!(completion.batch_size >= 1 && completion.batch_size <= 4);
        assert!(completion.latency > Duration::ZERO);
        assert_eq!(
            completion.scores.as_slice(),
            references[i].as_slice(),
            "request {i}: engine scores differ from the batch-1 reference"
        );
    }
    let metrics = engine.shutdown();
    assert_eq!(metrics.requests(), 16);
    assert!(metrics.batches() >= 4, "16 requests need at least 4 batches of ≤4");
    let report = metrics.report(Duration::from_secs(1));
    assert!(report.p99_ms >= report.p50_ms);
    assert!(report.mean_batch_size >= 1.0);
}

#[test]
fn engine_rejects_bad_samples_and_shuts_down_cleanly() {
    let (exec, _data, _labels) = conditioned_executor(classifier(2, 3), 67);
    let model = ServeEngine::builder().executor(&exec).build_model().unwrap();
    let engine =
        ServeEngine::builder().model(model).config(BatchingConfig::default()).start().unwrap();
    let bad = Tensor::zeros(Shape::nchw(1, 5, 8, 8));
    assert!(engine.submit(bad).is_err());
    // A bare C×H×W sample is auto-batched.
    let ok = Tensor::zeros(Shape::new(vec![3, 8, 8]));
    let completion = engine.infer_blocking(ok).unwrap();
    assert_eq!(completion.scores.len(), 3);
    drop(engine);
}

/// The deprecated constructors remain functional for one release cycle:
/// the pre-builder path must produce the same model and scores as the
/// builder path. This is the single intentionally-legacy call site.
#[test]
#[allow(deprecated)]
fn deprecated_constructors_still_match_the_builder() {
    let (exec, data, _labels) = conditioned_executor(classifier(2, 3), 71);
    let legacy = FrozenModel::from_executor(&exec).unwrap();
    let modern = ServeEngine::builder().executor(&exec).build_model().unwrap();
    let legacy_scores = legacy.executor(2).unwrap().infer(&data).unwrap();
    let modern_scores = modern.executor(2).unwrap().infer(&data).unwrap();
    assert_eq!(legacy_scores.as_slice(), modern_scores.as_slice());

    let checkpoint = Checkpoint::capture(&exec);
    let via_checkpoint = FrozenModel::from_checkpoint(&checkpoint).unwrap();
    let engine = ServeEngine::start(via_checkpoint, BatchingConfig::default()).unwrap();
    let sample =
        Tensor::from_vec(Shape::nchw(1, 3, 8, 8), data.as_slice()[..3 * 8 * 8].to_vec()).unwrap();
    let expected = modern.executor(1).unwrap().infer(&sample).unwrap();
    let completion = engine.infer_blocking(sample).unwrap();
    assert_eq!(completion.scores.as_slice(), expected.as_slice());
    engine.shutdown();
}
