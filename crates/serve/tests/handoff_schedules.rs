//! Schedule-permutation tests for the queue/condvar handoff state machine.
//!
//! The engine's worker loop is `plan_step` driven: under the shard lock a
//! worker observes `(queued, oldest_wait, shutdown)` and the pure function
//! decides Take / WaitFor / Park / Exit. Because the decision is pure, the
//! whole handoff can be model-checked: simulate a shard queue against a
//! virtual clock, enumerate **every permutation** of a small operation
//! alphabet (submissions, clock ticks, worker polls, shutdown), and assert
//! the liveness and safety invariants on all of them. Sleep-based stress
//! tests sample a handful of interleavings; this suite visits all of them
//! for the small alphabets that historically hide the bugs (lost wakeups,
//! premature exits, unbounded dwells).

use bnff_serve::assembly::{plan_step, BatchStep};
use std::collections::VecDeque;
use std::time::Duration;

const MS: Duration = Duration::from_millis(1);

/// One externally-scheduled event against the simulated shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// A client enqueues request `id`.
    Submit(usize),
    /// The virtual clock advances 1 ms.
    Tick,
    /// A worker wakes (by signal or timeout) and consults `plan_step`.
    Poll,
    /// Shutdown is flagged (idempotent).
    Shutdown,
}

/// A virtual-clock shard: the queue holds (id, enqueue_time) pairs.
struct Sim {
    queue: VecDeque<(usize, Duration)>,
    now: Duration,
    shutdown: bool,
    max_batch: usize,
    max_wait: Duration,
    taken: Vec<usize>,
}

impl Sim {
    fn new(max_batch: usize, max_wait: Duration) -> Self {
        Sim {
            queue: VecDeque::new(),
            now: Duration::ZERO,
            shutdown: false,
            max_batch,
            max_wait,
            taken: Vec::new(),
        }
    }

    fn oldest_wait(&self) -> Duration {
        self.queue.front().map_or(Duration::ZERO, |&(_, t)| self.now - t)
    }

    /// Applies one op; on Poll, checks every `plan_step` invariant and
    /// executes the decision (Take drains, WaitFor advances the clock as a
    /// timed-out wait would).
    fn apply(&mut self, op: Op, trace: &[Op]) {
        match op {
            Op::Submit(id) => self.queue.push_back((id, self.now)),
            Op::Tick => self.now += MS,
            Op::Shutdown => self.shutdown = true,
            Op::Poll => {
                let queued = self.queue.len();
                let oldest = self.oldest_wait();
                let step = plan_step(queued, oldest, self.shutdown, self.max_batch, self.max_wait);
                match step {
                    BatchStep::Park => {
                        assert_eq!(queued, 0, "{trace:?}: parked with {queued} pending requests");
                        assert!(!self.shutdown, "{trace:?}: parked during shutdown");
                    }
                    BatchStep::Exit => {
                        assert_eq!(queued, 0, "{trace:?}: exited with {queued} undrained requests");
                        assert!(self.shutdown, "{trace:?}: exited without shutdown");
                    }
                    BatchStep::Take(n) => {
                        assert!(n >= 1, "{trace:?}: empty Take");
                        assert!(n <= self.max_batch, "{trace:?}: Take({n}) > max_batch");
                        assert!(n <= queued, "{trace:?}: Take({n}) from {queued} queued");
                        assert!(
                            queued >= self.max_batch
                                || self.shutdown
                                || oldest >= self.max_wait,
                            "{trace:?}: Take({n}) while unripe ({queued} queued, oldest {oldest:?})"
                        );
                        for _ in 0..n {
                            self.taken.push(self.queue.pop_front().unwrap().0);
                        }
                    }
                    BatchStep::WaitFor(d) => {
                        assert!(d > Duration::ZERO, "{trace:?}: non-positive WaitFor");
                        assert!(
                            oldest + d <= self.max_wait,
                            "{trace:?}: WaitFor({d:?}) overshoots max_wait for oldest {oldest:?}"
                        );
                        // A timed-out wait: the clock advances the full
                        // bound, after which the oldest request is exactly
                        // ripe — the *next* poll must Take, guaranteeing
                        // progress.
                        self.now += d;
                        let next = plan_step(
                            self.queue.len(),
                            self.oldest_wait(),
                            self.shutdown,
                            self.max_batch,
                            self.max_wait,
                        );
                        assert!(
                            matches!(next, BatchStep::Take(_)),
                            "{trace:?}: poll after a full WaitFor dwell did not take ({next:?})"
                        );
                    }
                }
            }
        }
    }

    /// After the schedule: flag shutdown and poll until Exit, proving the
    /// drain terminates and loses nothing. Returns the full take order.
    fn drain(mut self, trace: &[Op]) -> Vec<usize> {
        self.shutdown = true;
        let bound = self.queue.len() + 2;
        for _ in 0..bound {
            let queued = self.queue.len();
            let step = plan_step(queued, self.oldest_wait(), true, self.max_batch, self.max_wait);
            match step {
                BatchStep::Exit => {
                    assert_eq!(queued, 0);
                    return self.taken;
                }
                BatchStep::Take(n) => {
                    assert!(n >= 1 && n <= self.max_batch.min(queued));
                    for _ in 0..n {
                        self.taken.push(self.queue.pop_front().unwrap().0);
                    }
                }
                other => panic!("{trace:?}: drain poll produced {other:?}"),
            }
        }
        panic!("{trace:?}: shutdown drain did not terminate in {bound} polls");
    }
}

/// Heap's algorithm: all permutations of `items`, visited in place.
fn permutations<T: Copy>(items: &mut Vec<T>, visit: &mut impl FnMut(&[T])) {
    fn heap<T: Copy>(k: usize, items: &mut Vec<T>, visit: &mut impl FnMut(&[T])) {
        if k <= 1 {
            visit(items);
            return;
        }
        for i in 0..k {
            heap(k - 1, items, visit);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    let k = items.len();
    heap(k, items, visit);
}

/// Runs one schedule end to end and asserts exactly-once delivery in FIFO
/// order of the ids that were submitted.
fn check_schedule(trace: &[Op], max_batch: usize, max_wait: Duration) {
    let mut sim = Sim::new(max_batch, max_wait);
    let mut submitted = Vec::new();
    for &op in trace {
        if let Op::Submit(id) = op {
            submitted.push(id);
        }
        sim.apply(op, trace);
    }
    let taken = sim.drain(trace);
    // Exactly once, in arrival order: batching coalesces but never reorders
    // or duplicates within a shard.
    assert_eq!(taken, submitted, "{trace:?}: ids lost, duplicated, or reordered");
}

/// All 7! = 5040 permutations of 3 submissions, a tick, two polls and a
/// shutdown, at a batch bound that forces partial takes.
#[test]
fn all_orders_of_submit_tick_poll_shutdown_deliver_exactly_once() {
    let mut ops = vec![
        Op::Submit(0),
        Op::Submit(1),
        Op::Submit(2),
        Op::Tick,
        Op::Poll,
        Op::Poll,
        Op::Shutdown,
    ];
    let mut count = 0usize;
    permutations(&mut ops, &mut |trace| {
        check_schedule(trace, 2, 2 * MS);
        count += 1;
    });
    assert_eq!(count, 5040);
}

/// Polls racing a ripening queue: two ticks either side of polls means some
/// schedules poll an unripe queue (must WaitFor) and some a ripe one (must
/// Take) — all must still deliver exactly once.
#[test]
fn all_orders_of_ripening_polls_deliver_exactly_once() {
    let mut ops = vec![Op::Submit(0), Op::Submit(1), Op::Tick, Op::Tick, Op::Poll, Op::Poll];
    let mut count = 0usize;
    permutations(&mut ops, &mut |trace| {
        check_schedule(trace, 4, 2 * MS);
        count += 1;
    });
    assert_eq!(count, 720);
}

/// Shutdown arriving at every possible point relative to submissions and
/// polls: drains must complete, never park, never lose a request.
#[test]
fn shutdown_at_every_point_still_drains() {
    let mut ops = vec![Op::Submit(0), Op::Poll, Op::Shutdown, Op::Submit(1), Op::Poll, Op::Tick];
    let mut count = 0usize;
    permutations(&mut ops, &mut |trace| {
        check_schedule(trace, 1, MS);
        count += 1;
    });
    assert_eq!(count, 720);
}

/// Batch-bound sweep over a fixed saturating schedule: whatever max_batch
/// is, takes cap at it and everything is delivered.
#[test]
fn batch_bounds_cap_takes_across_all_schedules() {
    for max_batch in 1..=5 {
        let mut ops = vec![Op::Submit(0), Op::Submit(1), Op::Submit(2), Op::Submit(3), Op::Poll];
        permutations(&mut ops, &mut |trace| {
            check_schedule(trace, max_batch, 2 * MS);
        });
    }
}

/// Zero max_wait (no coalescing delay): every poll with pending work must
/// take immediately; WaitFor must never appear.
#[test]
fn zero_max_wait_never_waits_in_any_schedule() {
    let mut ops = vec![Op::Submit(0), Op::Poll, Op::Submit(1), Op::Poll, Op::Tick];
    permutations(&mut ops, &mut |trace| {
        let mut sim = Sim::new(8, Duration::ZERO);
        for &op in trace {
            if op == Op::Poll {
                let step = plan_step(
                    sim.queue.len(),
                    sim.oldest_wait(),
                    sim.shutdown,
                    sim.max_batch,
                    sim.max_wait,
                );
                assert!(
                    !matches!(step, BatchStep::WaitFor(_)),
                    "{trace:?}: waited despite max_wait == 0"
                );
            }
            sim.apply(op, trace);
        }
        sim.drain(trace);
    });
}
