//! Artifact robustness: every way a file can rot must surface as the
//! matching typed [`ModelError`] — never a panic, never a garbage model.

use bnff_artifact::{
    Artifact, ArtifactWriter, ModelError, ParamKind, Provenance, FORMAT_VERSION, HEADER_LEN,
};
use bnff_graph::builder::GraphBuilder;
use bnff_graph::op::Conv2dAttrs;
use bnff_tensor::Shape;
use proptest::prelude::*;

/// A small but realistic artifact: a conv/FC graph with weights, biases and
/// running statistics.
fn valid_artifact() -> Vec<u8> {
    let mut b = GraphBuilder::new("corruption");
    let x = b.input("data", Shape::nchw(1, 3, 8, 8)).unwrap();
    let c = b.conv2d(x, Conv2dAttrs::same_3x3(4), "conv").unwrap();
    let g = b.global_avg_pool(c, "gap").unwrap();
    b.fully_connected(g, 2, "fc").unwrap();
    let graph = b.finish();
    let conv_idx = graph.nodes().find(|n| n.name == "conv").unwrap().id.index();
    let fc_idx = graph.nodes().find(|n| n.name == "fc").unwrap().id.index();

    let prov = Provenance {
        created_by: "corruption-test".into(),
        source: "corruption".into(),
        source_format_version: 1,
    };
    let mut w = ArtifactWriter::new(graph, 0.1, prov);
    let weights: Vec<f32> = (0..4 * 3 * 9).map(|i| (i as f32 * 0.37).sin()).collect();
    let wt = w.add_tensor("conv/weights", vec![4, 3, 3, 3], &weights).unwrap();
    w.add_param(conv_idx, ParamKind::Conv { weights: wt, bias: None });
    let fcw: Vec<f32> = (0..2 * 4).map(|i| (i as f32 * 0.11).cos()).collect();
    let fw = w.add_tensor("fc/weights", vec![2, 4], &fcw).unwrap();
    let fb = w.add_tensor("fc/bias", vec![2], &[0.1, -0.2]).unwrap();
    w.add_param(fc_idx, ParamKind::Fc { weights: fw, bias: fb });
    let mean = w.add_tensor("conv/mean", vec![4], &[0.0, 0.1, -0.1, 0.3]).unwrap();
    let var = w.add_tensor("conv/var", vec![4], &[1.0, 0.9, 1.1, 1.4]).unwrap();
    w.add_stats(conv_idx, mean, var);
    w.to_bytes().unwrap()
}

#[test]
fn the_untouched_artifact_loads() {
    let artifact = Artifact::from_bytes(&valid_artifact()).unwrap();
    assert_eq!(artifact.manifest().tensors.len(), 5);
    assert_eq!(artifact.manifest().params.len(), 2);
    assert_eq!(artifact.manifest().stats.len(), 1);
}

#[test]
fn wrong_magic_is_bad_magic() {
    let mut bytes = valid_artifact();
    bytes[0..4].copy_from_slice(b"JSON");
    match Artifact::from_bytes(&bytes) {
        Err(ModelError::BadMagic { found }) => assert_eq!(&found, b"JSON"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn future_version_is_unsupported_version() {
    let mut bytes = valid_artifact();
    bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match Artifact::from_bytes(&bytes) {
        Err(ModelError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, Some(FORMAT_VERSION + 1));
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn truncation_at_every_boundary_is_truncated() {
    let bytes = valid_artifact();
    // Mid-header, mid-manifest, mid-tensor-section: all typed, none panic.
    for cut in [0, 7, HEADER_LEN - 1, HEADER_LEN + 10, bytes.len() - 1] {
        match Artifact::from_bytes(&bytes[..cut]) {
            Err(ModelError::Truncated { needed, available }) => {
                assert!(needed > available, "cut at {cut}: {needed} vs {available}");
                assert_eq!(available, cut as u64);
            }
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn flipped_manifest_byte_is_a_manifest_checksum_mismatch() {
    let mut bytes = valid_artifact();
    bytes[HEADER_LEN + 3] ^= 0x40;
    match Artifact::from_bytes(&bytes) {
        Err(ModelError::ChecksumMismatch { section, expected, computed }) => {
            assert_eq!(section, "manifest");
            assert_ne!(expected, computed);
        }
        other => panic!("expected manifest ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn flipped_tensor_byte_is_a_tensor_checksum_mismatch() {
    let mut bytes = valid_artifact();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    match Artifact::from_bytes(&bytes) {
        Err(ModelError::ChecksumMismatch { section, .. }) => assert_eq!(section, "tensors"),
        other => panic!("expected tensor ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn trailing_garbage_is_a_layout_error() {
    let mut bytes = valid_artifact();
    bytes.extend_from_slice(&[0xAB; 16]);
    assert!(matches!(Artifact::from_bytes(&bytes), Err(ModelError::Layout(_))));
}

#[test]
fn a_lying_manifest_cannot_read_outside_the_section() {
    // Rewrite the manifest so a tensor's offset points past the section,
    // fixing up the header lengths and CRC so only layout validation can
    // catch it.
    let bytes = valid_artifact();
    let manifest_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let manifest = std::str::from_utf8(&bytes[HEADER_LEN..HEADER_LEN + manifest_len]).unwrap();
    let evil = manifest.replacen("\"offset\":0", "\"offset\":9223372036854775744", 1);
    assert_ne!(evil, manifest, "fixture must actually move an offset");
    let tensor_base = (HEADER_LEN + manifest_len).next_multiple_of(64);
    let section = &bytes[tensor_base..];
    let mut rebuilt = Vec::new();
    rebuilt.extend_from_slice(&bytes[0..8]);
    rebuilt.extend_from_slice(&(evil.len() as u64).to_le_bytes());
    rebuilt.extend_from_slice(&bytes[16..24]);
    rebuilt.extend_from_slice(&bnff_artifact::crc::crc32(evil.as_bytes()).to_le_bytes());
    rebuilt.extend_from_slice(&bytes[28..32]);
    rebuilt.extend_from_slice(evil.as_bytes());
    rebuilt.resize((HEADER_LEN + evil.len()).next_multiple_of(64), 0);
    rebuilt.extend_from_slice(section);
    match Artifact::from_bytes(&rebuilt) {
        // Either is sound: the offset may be rejected as out of section
        // (Truncated) or as misaligned (Layout), but it must never be
        // dereferenced.
        Err(ModelError::Truncated { .. } | ModelError::Layout(_)) => {}
        other => panic!("expected Truncated/Layout, got {other:?}"),
    }
}

proptest! {
    /// Arbitrary single-byte corruption anywhere in the file yields a typed
    /// error (every byte is covered by the header, a checksum, or the
    /// zero-padding rule). Never a panic, never UB.
    #[test]
    fn random_byte_flips_never_panic(pos in 0usize..4096, mask in 1usize..256) {
        let mut bytes = valid_artifact();
        let pos = pos % bytes.len();
        bytes[pos] ^= mask as u8;
        prop_assert!(Artifact::from_bytes(&bytes).is_err());
    }

    /// Arbitrary truncation points never panic.
    #[test]
    fn random_truncations_never_panic(cut in 0usize..4096) {
        let bytes = valid_artifact();
        let cut = cut % bytes.len();
        prop_assert!(Artifact::from_bytes(&bytes[..cut]).is_err());
    }

    /// Random leading bytes (fuzzed non-artifacts) never panic.
    #[test]
    fn random_blobs_never_panic(blob in prop::collection::vec(0usize..256, 0..256)) {
        let blob: Vec<u8> = blob.into_iter().map(|b| b as u8).collect();
        let _ = Artifact::from_bytes(&blob);
    }
}
