//! # bnff-artifact — single-file model artifacts
//!
//! The JSON checkpoint (`bnff_train::Checkpoint`) is a debugging format: it
//! round-trips bit-exactly, but loading it runs a JSON number parser over
//! every weight and allocates a parse tree bigger than the model. This
//! crate defines the **deployment** format: one file, one read, raw bytes.
//!
//! ## Byte layout
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     4  magic  b"BNFF"
//!      4     4  container format version (u32 LE, currently 1)
//!      8     8  manifest byte length (u64 LE)
//!     16     8  tensor-section byte length (u64 LE)
//!     24     4  CRC-32 of the manifest bytes (u32 LE)
//!     28     4  CRC-32 of the tensor section (u32 LE)
//!     32     …  manifest: UTF-8 JSON (graph, tensor table, wiring)
//!      …     …  zero padding to the next 64-byte file offset
//!      …     …  tensor section: raw little-endian f32 data; every
//!               tensor's offset is 64-byte aligned
//! ```
//!
//! The manifest carries topology and *placement* — names, dtypes, shapes,
//! offsets — while all bulk parameter data lives in the aligned binary
//! section. [`Artifact`] validates the header, both checksums and the
//! declared layout once at load, then serves [`TensorView`]s that borrow
//! `&[f32]` straight out of the file bytes: loading a model is one aligned
//! read plus a CRC sweep, independent of parameter count. The layout is
//! mmap-compatible (alignment and offsets hold under page mapping); the
//! reader uses an aligned read because the workspace has no platform mmap
//! bindings.
//!
//! Conversion to and from the training checkpoint lives in `bnff-train`
//! (`Checkpoint::write_artifact` / `Checkpoint::read_artifact`), keeping
//! this crate free of training-stack dependencies so the C ABI and the
//! serving binary can link it directly.
//!
//! ## Example
//!
//! ```rust
//! use bnff_artifact::{Artifact, ArtifactWriter, ParamKind, Provenance};
//! use bnff_graph::Graph;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prov = Provenance {
//!     created_by: "example".into(),
//!     source: "tiny".into(),
//!     source_format_version: 1,
//! };
//! let mut writer = ArtifactWriter::new(Graph::new("tiny"), 0.1, prov);
//! let w = writer.add_tensor("node0/weights", vec![2, 2], &[1.0, 2.0, 3.0, 4.0])?;
//! writer.add_param(0, ParamKind::Conv { weights: w, bias: None });
//! let bytes = writer.to_bytes()?;
//!
//! let artifact = Artifact::from_bytes(&bytes)?;
//! assert_eq!(artifact.tensor(w)?.data, &[1.0, 2.0, 3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod crc;
pub mod error;
pub mod manifest;
pub mod reader;
pub mod writer;

pub use error::ModelError;
pub use manifest::{Dtype, Manifest, ParamEntry, ParamKind, Provenance, StatsEntry, TensorEntry};
pub use reader::{Artifact, TensorView};
pub use writer::ArtifactWriter;

/// The artifact magic: the first four bytes of every bnff model file.
pub const MAGIC: [u8; 4] = *b"BNFF";

/// The container format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Size of the fixed binary header, in bytes.
pub const HEADER_LEN: usize = 32;

/// Alignment of every tensor's byte offset inside the tensor section.
/// 64 bytes = one cache line, and a multiple of every SIMD vector width the
/// kernels use, so zero-copy views are always aligned loads.
pub const TENSOR_ALIGN: usize = 64;

/// Whether `bytes` begin with the artifact magic — the cheap sniff used to
/// route a model file to the artifact reader vs. the JSON checkpoint
/// parser.
pub fn is_artifact(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[0..4] == MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_sniffing() {
        assert!(is_artifact(b"BNFF\x01\x00"));
        assert!(!is_artifact(b"BNF"));
        assert!(!is_artifact(b"{\"format_version\":1}"));
    }
}
