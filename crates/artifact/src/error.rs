//! The typed model-loading error hierarchy.
//!
//! Every way a model can fail to load — a file that is not an artifact, a
//! version from the future, bit rot, a short read, a manifest that does not
//! describe its own tensor section — maps to one [`ModelError`] variant.
//! `bnff-train` wraps it as `TrainError::Model` and `bnff-serve` as
//! `ServeError::Model`, so callers match on one hierarchy no matter which
//! layer detected the problem.

use std::fmt;

/// A typed model-artifact / checkpoint loading error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The file does not start with the artifact magic `b"BNFF"`.
    BadMagic {
        /// The first four bytes actually found.
        found: [u8; 4],
    },
    /// The file declares a format version this build does not read.
    UnsupportedVersion {
        /// The version the file declares (`None` when the field is missing
        /// or non-numeric — only possible for JSON checkpoints, which carry
        /// the version as a document field rather than a fixed header word).
        found: Option<u32>,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// A CRC-checksummed section does not hash to the value the header
    /// recorded — the file was corrupted after it was written.
    ChecksumMismatch {
        /// Which section failed: `"manifest"` or `"tensors"`.
        section: &'static str,
        /// The checksum the header recorded at write time.
        expected: u32,
        /// The checksum computed over the bytes actually present.
        computed: u32,
    },
    /// The file ends before the bytes its header (or manifest) promises.
    Truncated {
        /// Bytes the layout requires.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// The manifest JSON is malformed or fails schema validation.
    Manifest(String),
    /// The manifest is well-formed but describes an impossible byte layout
    /// (misaligned or overlapping tensor, wrong byte length for a shape,
    /// dangling tensor reference).
    Layout(String),
    /// An I/O error while reading or writing the artifact file.
    Io(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadMagic { found } => {
                write!(
                    f,
                    "not a bnff model artifact: file starts with {found:?}, expected b\"BNFF\""
                )
            }
            ModelError::UnsupportedVersion { found: Some(found), supported } => write!(
                f,
                "unsupported model format version {found} (this build reads version {supported}); \
                 re-export the model with a matching toolchain"
            ),
            ModelError::UnsupportedVersion { found: None, supported } => write!(
                f,
                "model declares no numeric format version (this build reads version {supported}); \
                 the file is not a bnff model or predates versioning"
            ),
            ModelError::ChecksumMismatch { section, expected, computed } => write!(
                f,
                "{section} checksum mismatch: header records {expected:#010x}, bytes hash to \
                 {computed:#010x} — the file is corrupted"
            ),
            ModelError::Truncated { needed, available } => {
                write!(
                    f,
                    "model file truncated: layout needs {needed} bytes, only {available} present"
                )
            }
            ModelError::Manifest(msg) => write!(f, "model manifest error: {msg}"),
            ModelError::Layout(msg) => write!(f, "model layout error: {msg}"),
            ModelError::Io(msg) => write!(f, "model i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_diagnostic_details() {
        let e = ModelError::BadMagic { found: *b"JSON" };
        assert!(e.to_string().contains("BNFF"));
        let e = ModelError::UnsupportedVersion { found: Some(9), supported: 1 };
        assert!(e.to_string().contains("version 9"));
        let e = ModelError::UnsupportedVersion { found: None, supported: 1 };
        assert!(e.to_string().contains("no numeric format version"));
        let e = ModelError::ChecksumMismatch { section: "manifest", expected: 1, computed: 2 };
        assert!(e.to_string().contains("manifest checksum"));
        let e = ModelError::Truncated { needed: 100, available: 7 };
        assert!(e.to_string().contains("100"));
        assert!(ModelError::Manifest("x".into()).to_string().contains("manifest"));
        assert!(ModelError::Layout("x".into()).to_string().contains("layout"));
        assert!(ModelError::Io("x".into()).to_string().contains("i/o"));
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ModelError>();
    }
}
