//! Validating, zero-copy artifact reading.
//!
//! [`Artifact::open`] reads the file **once** into a 64-bit-aligned
//! allocation, validates the header, both CRCs and the manifest's byte
//! layout, and then hands out [`TensorView`]s — `&[f32]` slices borrowed
//! straight from the file bytes. No per-tensor allocation, no number
//! parsing: the only work proportional to model size is the single read
//! and the CRC sweep. The layout (64-byte-aligned offsets, raw
//! little-endian IEEE-754) is mmap-compatible; the reader uses an aligned
//! read because the workspace forgoes platform mmap bindings.

use crate::crc::crc32;
use crate::error::ModelError;
use crate::manifest::{Manifest, TensorEntry};
use crate::{FORMAT_VERSION, HEADER_LEN, MAGIC, TENSOR_ALIGN};
use serde::Deserialize;
use std::io::Read;
use std::path::Path;

/// A byte buffer whose base address is 8-byte aligned (backed by `u64`
/// storage), so any 64-byte-aligned offset inside it is valid for `f32`
/// reinterpretation.
#[derive(Debug)]
struct AlignedBytes {
    storage: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    fn with_len(len: usize) -> Self {
        AlignedBytes { storage: vec![0u64; len.div_ceil(8)], len }
    }

    fn from_slice(bytes: &[u8]) -> Self {
        let mut buf = Self::with_len(bytes.len());
        buf.as_mut_slice().copy_from_slice(bytes);
        buf
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: the storage allocation holds at least `len` bytes
        // (`div_ceil` rounding), `u64` has no padding and any byte pattern
        // is a valid `u8`.
        unsafe { std::slice::from_raw_parts(self.storage.as_ptr().cast::<u8>(), self.len) }
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: as above, and the buffer is uniquely borrowed.
        unsafe { std::slice::from_raw_parts_mut(self.storage.as_mut_ptr().cast::<u8>(), self.len) }
    }
}

/// A zero-copy view of one stored tensor.
#[derive(Debug, Clone, Copy)]
pub struct TensorView<'a> {
    /// The tensor-table entry (name, dtype, shape, placement).
    pub entry: &'a TensorEntry,
    /// The tensor's values, borrowed from the artifact's file bytes.
    pub data: &'a [f32],
}

impl TensorView<'_> {
    /// The tensor's logical shape.
    pub fn shape(&self) -> &[usize] {
        &self.entry.shape
    }
}

/// A loaded, validated model artifact.
///
/// Construction validates everything up front — magic, version, both CRCs,
/// manifest JSON, and the byte layout of every tensor-table entry — so
/// [`Artifact::tensor`] cannot fail for in-range indices and a view can
/// never read outside the file.
#[derive(Debug)]
pub struct Artifact {
    bytes: AlignedBytes,
    manifest: Manifest,
    tensor_base: usize,
}

impl Artifact {
    /// Reads and validates an artifact file.
    ///
    /// # Errors
    /// Returns a typed [`ModelError`] for every failure mode: short or
    /// unreadable file, wrong magic, future version, checksum mismatch,
    /// malformed manifest, impossible layout.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ModelError> {
        let path = path.as_ref();
        let mut file = std::fs::File::open(path)
            .map_err(|e| ModelError::Io(format!("opening {}: {e}", path.display())))?;
        let len = file
            .metadata()
            .map_err(|e| ModelError::Io(format!("stat {}: {e}", path.display())))?
            .len();
        let len = usize::try_from(len)
            .map_err(|_| ModelError::Io(format!("{} too large for this host", path.display())))?;
        let mut bytes = AlignedBytes::with_len(len);
        file.read_exact(bytes.as_mut_slice())
            .map_err(|e| ModelError::Io(format!("reading {}: {e}", path.display())))?;
        Self::from_aligned(bytes)
    }

    /// Validates an artifact already held in memory (the bytes are copied
    /// once into aligned storage).
    ///
    /// # Errors
    /// As [`Artifact::open`], minus the I/O failure modes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ModelError> {
        Self::from_aligned(AlignedBytes::from_slice(bytes))
    }

    fn from_aligned(bytes: AlignedBytes) -> Result<Self, ModelError> {
        if cfg!(target_endian = "big") {
            return Err(ModelError::Layout(
                "artifact tensors are little-endian; zero-copy views are unavailable on \
                 big-endian hosts"
                    .to_string(),
            ));
        }
        let buf = bytes.as_slice();
        let available = buf.len() as u64;
        if buf.len() < HEADER_LEN {
            return Err(ModelError::Truncated { needed: HEADER_LEN as u64, available });
        }
        if buf[0..4] != MAGIC {
            return Err(ModelError::BadMagic { found: [buf[0], buf[1], buf[2], buf[3]] });
        }
        let version = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(ModelError::UnsupportedVersion {
                found: Some(version),
                supported: FORMAT_VERSION,
            });
        }
        let manifest_len = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        let tensor_len = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
        let manifest_crc = u32::from_le_bytes(buf[24..28].try_into().expect("4 bytes"));
        let tensor_crc = u32::from_le_bytes(buf[28..32].try_into().expect("4 bytes"));

        let tensor_base = crate::writer::align_up(HEADER_LEN as u64 + manifest_len, 64);
        let needed = tensor_base
            .checked_add(tensor_len)
            .ok_or_else(|| ModelError::Layout("section lengths overflow u64".to_string()))?;
        if needed > available {
            return Err(ModelError::Truncated { needed, available });
        }
        if needed < available {
            return Err(ModelError::Layout(format!(
                "{} trailing bytes after the tensor section",
                available - needed
            )));
        }

        let manifest_bytes = &buf[HEADER_LEN..HEADER_LEN + manifest_len as usize];
        let computed = crc32(manifest_bytes);
        if computed != manifest_crc {
            return Err(ModelError::ChecksumMismatch {
                section: "manifest",
                expected: manifest_crc,
                computed,
            });
        }
        if buf[HEADER_LEN + manifest_len as usize..tensor_base as usize].iter().any(|&b| b != 0) {
            return Err(ModelError::Layout("non-zero bytes in the alignment gap".to_string()));
        }
        let section = &buf[tensor_base as usize..];
        let computed = crc32(section);
        if computed != tensor_crc {
            return Err(ModelError::ChecksumMismatch {
                section: "tensors",
                expected: tensor_crc,
                computed,
            });
        }

        let manifest_json = std::str::from_utf8(manifest_bytes)
            .map_err(|e| ModelError::Manifest(format!("manifest is not UTF-8: {e}")))?;
        let value = serde_json::parse(manifest_json)
            .map_err(|e| ModelError::Manifest(format!("manifest JSON: {e}")))?;
        let manifest = Manifest::from_value(&value)
            .map_err(|e| ModelError::Manifest(format!("manifest schema: {e}")))?;

        validate_layout(&manifest, tensor_len)?;
        Ok(Artifact { bytes, manifest, tensor_base: tensor_base as usize })
    }

    /// The validated manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Total size of the artifact in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len
    }

    /// Whether the artifact holds no bytes (never true for a valid file).
    pub fn is_empty(&self) -> bool {
        self.bytes.len == 0
    }

    /// A zero-copy view of tensor-table entry `id`.
    ///
    /// # Errors
    /// Returns [`ModelError::Layout`] for an out-of-range index (layout
    /// validity of in-range entries was proven at construction).
    pub fn tensor(&self, id: usize) -> Result<TensorView<'_>, ModelError> {
        let entry = self
            .manifest
            .tensors
            .get(id)
            .ok_or_else(|| ModelError::Layout(format!("tensor index {id} out of range")))?;
        let start = self.tensor_base + entry.offset as usize;
        let values = entry.byte_len as usize / 4;
        let buf = self.bytes.as_slice();
        debug_assert!(start + entry.byte_len as usize <= buf.len());
        debug_assert_eq!(start % 4, 0);
        // SAFETY: construction validated `offset % 64 == 0` (and the base
        // is 8-aligned, so `start % 4 == 0`), `offset + byte_len` lies
        // inside the tensor section, and any bit pattern is a valid `f32`.
        // The target is little-endian (checked at construction), so the
        // stored little-endian words reinterpret directly.
        let data =
            unsafe { std::slice::from_raw_parts(buf.as_ptr().add(start).cast::<f32>(), values) };
        Ok(TensorView { entry, data })
    }
}

/// Proves every tensor-table entry and every reference into it is
/// consistent with the tensor section's extent.
fn validate_layout(manifest: &Manifest, tensor_len: u64) -> Result<(), ModelError> {
    for (i, entry) in manifest.tensors.iter().enumerate() {
        if entry.offset % TENSOR_ALIGN as u64 != 0 {
            return Err(ModelError::Layout(format!(
                "tensor {i} '{}' offset {} is not {TENSOR_ALIGN}-byte aligned",
                entry.name, entry.offset
            )));
        }
        let volume: usize = entry.shape.iter().product();
        let expect = (volume * entry.dtype.size_of()) as u64;
        if expect != entry.byte_len {
            return Err(ModelError::Layout(format!(
                "tensor {i} '{}': shape {:?} needs {expect} bytes, entry declares {}",
                entry.name, entry.shape, entry.byte_len
            )));
        }
        let end = entry
            .offset
            .checked_add(entry.byte_len)
            .ok_or_else(|| ModelError::Layout(format!("tensor {i} offset overflows u64")))?;
        if end > tensor_len {
            return Err(ModelError::Truncated { needed: end, available: tensor_len });
        }
    }
    let n = manifest.tensors.len();
    for param in &manifest.params {
        for r in param.kind.tensor_refs() {
            if r >= n {
                return Err(ModelError::Layout(format!(
                    "param entry for node {} references tensor {r}, table has {n}",
                    param.node
                )));
            }
        }
    }
    for stats in &manifest.stats {
        if stats.mean >= n || stats.var >= n {
            return Err(ModelError::Layout(format!(
                "stats entry for node {} references tensors {}/{}, table has {n}",
                stats.node, stats.mean, stats.var
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{ParamKind, Provenance};
    use crate::writer::ArtifactWriter;
    use bnff_graph::Graph;

    fn sample() -> Vec<u8> {
        let graph = Graph::new("reader".to_string());
        let prov = Provenance {
            created_by: "test".into(),
            source: "reader".into(),
            source_format_version: 1,
        };
        let mut w = ArtifactWriter::new(graph, 0.1, prov);
        let a =
            w.add_tensor("node0/weights", vec![2, 3], &[1.0, -2.0, 3.5, 0.0, -0.0, 42.0]).unwrap();
        let b = w.add_tensor("node0/bias", vec![2], &[0.5, f32::MIN_POSITIVE]).unwrap();
        w.add_param(0, ParamKind::Conv { weights: a, bias: Some(b) });
        w.to_bytes().unwrap()
    }

    #[test]
    fn round_trips_bit_identically_through_zero_copy_views() {
        let bytes = sample();
        let artifact = Artifact::from_bytes(&bytes).unwrap();
        assert_eq!(artifact.len(), bytes.len());
        assert!(!artifact.is_empty());
        let view = artifact.tensor(0).unwrap();
        assert_eq!(view.shape(), &[2, 3]);
        let expect = [1.0f32, -2.0, 3.5, 0.0, -0.0, 42.0];
        for (got, want) in view.data.iter().zip(expect) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        let bias = artifact.tensor(1).unwrap();
        assert_eq!(bias.data[1].to_bits(), f32::MIN_POSITIVE.to_bits());
        assert!(artifact.tensor(2).is_err());
        assert_eq!(artifact.manifest().params.len(), 1);
    }

    #[test]
    fn file_round_trip() {
        let bytes = sample();
        let dir = std::env::temp_dir().join(format!("bnff-artifact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bnff");
        std::fs::write(&path, &bytes).unwrap();
        let artifact = Artifact::open(&path).unwrap();
        assert_eq!(artifact.manifest().tensors.len(), 2);
        assert!(Artifact::open(dir.join("missing.bnff")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
