//! Building and serializing artifacts.

use crate::crc::crc32;
use crate::error::ModelError;
use crate::manifest::{
    Dtype, Manifest, ParamEntry, ParamKind, Provenance, StatsEntry, TensorEntry,
};
use crate::{FORMAT_VERSION, HEADER_LEN, MAGIC, TENSOR_ALIGN};
use bnff_graph::Graph;
use std::path::Path;

/// Builds a single-file model artifact: collect the graph, the raw tensors
/// and their wiring, then serialize everything with [`ArtifactWriter::to_bytes`]
/// or [`ArtifactWriter::write`].
///
/// Tensor offsets are assigned on insertion, each aligned to
/// [`TENSOR_ALIGN`] bytes, so the writer is deterministic: the same model
/// always produces byte-identical artifacts.
#[derive(Debug, Clone)]
pub struct ArtifactWriter {
    graph: Graph,
    momentum: f32,
    provenance: Provenance,
    tensors: Vec<TensorEntry>,
    data: Vec<Vec<f32>>,
    params: Vec<ParamEntry>,
    stats: Vec<StatsEntry>,
    cursor: u64,
}

impl ArtifactWriter {
    /// Starts an artifact for one graph.
    pub fn new(graph: Graph, momentum: f32, provenance: Provenance) -> Self {
        ArtifactWriter {
            graph,
            momentum,
            provenance,
            tensors: Vec::new(),
            data: Vec::new(),
            params: Vec::new(),
            stats: Vec::new(),
            cursor: 0,
        }
    }

    /// Adds one tensor to the tensor section and returns its table index.
    ///
    /// # Errors
    /// Returns [`ModelError::Layout`] when `data.len()` disagrees with the
    /// shape's volume.
    pub fn add_tensor(
        &mut self,
        name: impl Into<String>,
        shape: Vec<usize>,
        data: &[f32],
    ) -> Result<usize, ModelError> {
        let name = name.into();
        let volume: usize = shape.iter().product();
        if volume != data.len() {
            return Err(ModelError::Layout(format!(
                "tensor '{name}': shape {shape:?} has volume {volume} but {} values were given",
                data.len()
            )));
        }
        let offset = self.cursor;
        let byte_len = (data.len() * Dtype::F32.size_of()) as u64;
        self.cursor = align_up(offset + byte_len, TENSOR_ALIGN as u64);
        self.tensors.push(TensorEntry { name, dtype: Dtype::F32, shape, offset, byte_len });
        self.data.push(data.to_vec());
        Ok(self.tensors.len() - 1)
    }

    /// Registers the parameter wiring of one graph node.
    pub fn add_param(&mut self, node: usize, kind: ParamKind) {
        self.params.push(ParamEntry { node, kind });
    }

    /// Registers the running-statistics wiring of one graph node.
    pub fn add_stats(&mut self, node: usize, mean: usize, var: usize) {
        self.stats.push(StatsEntry { node, mean, var });
    }

    /// Serializes the artifact: header, CRC-checksummed JSON manifest,
    /// aligned little-endian tensor section.
    ///
    /// # Errors
    /// Returns an error when the manifest fails to serialize.
    pub fn to_bytes(&self) -> Result<Vec<u8>, ModelError> {
        let mut params = self.params.clone();
        params.sort_by_key(|p| p.node);
        let mut stats = self.stats.clone();
        stats.sort_by_key(|s| s.node);
        let manifest = Manifest {
            graph: self.graph.clone(),
            tensors: self.tensors.clone(),
            params,
            stats,
            momentum: self.momentum,
            provenance: self.provenance.clone(),
        };
        let manifest_json =
            serde_json::to_string(&manifest).map_err(|e| ModelError::Manifest(e.to_string()))?;
        let manifest_bytes = manifest_json.as_bytes();

        // Tensor section: every tensor at its pre-assigned aligned offset,
        // gaps zero-filled.
        let tensor_len = self.cursor as usize;
        let mut section = vec![0u8; tensor_len];
        for (entry, data) in self.tensors.iter().zip(&self.data) {
            let start = entry.offset as usize;
            for (i, v) in data.iter().enumerate() {
                section[start + 4 * i..start + 4 * i + 4].copy_from_slice(&v.to_le_bytes());
            }
        }

        let tensor_base = align_up(HEADER_LEN as u64 + manifest_bytes.len() as u64, 64) as usize;
        let mut out = Vec::with_capacity(tensor_base + tensor_len);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(manifest_bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&(tensor_len as u64).to_le_bytes());
        out.extend_from_slice(&crc32(manifest_bytes).to_le_bytes());
        out.extend_from_slice(&crc32(&section).to_le_bytes());
        debug_assert_eq!(out.len(), HEADER_LEN);
        out.extend_from_slice(manifest_bytes);
        out.resize(tensor_base, 0);
        out.extend_from_slice(&section);
        Ok(out)
    }

    /// Writes the artifact to a file.
    ///
    /// # Errors
    /// Returns an error when serialization or the write fails.
    pub fn write(&self, path: impl AsRef<Path>) -> Result<(), ModelError> {
        let path = path.as_ref();
        let bytes = self.to_bytes()?;
        std::fs::write(path, bytes)
            .map_err(|e| ModelError::Io(format!("writing {}: {e}", path.display())))
    }
}

/// Rounds `value` up to the next multiple of `align` (a power of two).
pub(crate) fn align_up(value: u64, align: u64) -> u64 {
    (value + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_aligned_and_deterministic() {
        let graph = Graph::new("w".to_string());
        let prov =
            Provenance { created_by: "test".into(), source: "w".into(), source_format_version: 1 };
        let mut w = ArtifactWriter::new(graph, 0.1, prov);
        let a = w.add_tensor("a", vec![3], &[1.0, 2.0, 3.0]).unwrap();
        let b = w.add_tensor("b", vec![2, 2], &[4.0; 4]).unwrap();
        assert_eq!((a, b), (0, 1));
        let bytes1 = w.to_bytes().unwrap();
        let bytes2 = w.to_bytes().unwrap();
        assert_eq!(bytes1, bytes2, "writer must be deterministic");
        // Second tensor starts at the next 64-byte boundary after 12 bytes.
        assert_eq!(w.tensors[1].offset, 64);
        // Shape/volume mismatches are rejected.
        assert!(w.add_tensor("bad", vec![2], &[0.0; 3]).is_err());
    }
}
