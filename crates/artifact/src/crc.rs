//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! Hand-rolled because the build environment has no crates.io access; the
//! algorithm matches zlib's `crc32()` so artifacts can be checked with
//! standard tooling.

/// The 256-entry CRC-32 lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC-32 of `bytes` (initial value `0xFFFFFFFF`, final XOR, as zlib).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_zlib_reference_vectors() {
        // Standard check value for the ASCII digits "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn a_single_flipped_bit_changes_the_checksum() {
        let a = b"bnff artifact bytes".to_vec();
        let mut b = a.clone();
        b[7] ^= 0x01;
        assert_ne!(crc32(&a), crc32(&b));
    }
}
