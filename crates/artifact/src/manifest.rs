//! The artifact's JSON manifest: everything about the model *except* the
//! bulk parameter bytes.
//!
//! The manifest is deliberately small — graph topology, a tensor table
//! whose entries point into the raw tensor section, parameter/statistics
//! wiring, provenance. All `f32` bulk data lives outside the JSON in the
//! aligned tensor section, so loading a model never runs a number parser
//! over megabytes of weights (the paper's DRAM-byte economy, applied to
//! model loading).

use bnff_graph::Graph;
use serde::{Deserialize, Serialize};

/// The scalar element type of a stored tensor.
///
/// Only `f32` exists today; the field is in the format so a future
/// quantized artifact (`i8` weights, `i32` accumulators) extends the enum
/// instead of revving the container version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dtype {
    /// IEEE-754 binary32, little-endian.
    F32,
}

impl Dtype {
    /// Bytes per scalar element.
    pub fn size_of(self) -> usize {
        match self {
            Dtype::F32 => 4,
        }
    }
}

/// One entry of the tensor table: where a tensor's raw bytes live inside
/// the tensor section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorEntry {
    /// Human-readable name (`node12/weights`), for tooling and diagnostics.
    pub name: String,
    /// Element type of the stored bytes.
    pub dtype: Dtype,
    /// The tensor's logical shape; its volume times the dtype width must
    /// equal `byte_len`.
    pub shape: Vec<usize>,
    /// Byte offset inside the tensor section, always a multiple of the
    /// section alignment (64) so views stay cache-line/SIMD aligned and the
    /// section can be mmapped.
    pub offset: u64,
    /// Length of the tensor's bytes.
    pub byte_len: u64,
}

/// How one parameterised graph node's tensors are wired together, by
/// tensor-table index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamKind {
    /// A convolution's filters and optional bias.
    Conv {
        /// Tensor-table index of the filter tensor.
        weights: usize,
        /// Tensor-table index of the bias vector, if the layer has one.
        bias: Option<usize>,
    },
    /// A Batch Normalization layer's γ/β.
    Bn {
        /// Tensor-table index of γ.
        gamma: usize,
        /// Tensor-table index of β.
        beta: usize,
    },
    /// A fused convolution that also owns the absorbed normalization's γ/β.
    ConvBn {
        /// Tensor-table index of the filter tensor.
        weights: usize,
        /// Tensor-table index of the bias vector, if the layer has one.
        bias: Option<usize>,
        /// Tensor-table index of γ.
        gamma: usize,
        /// Tensor-table index of β.
        beta: usize,
    },
    /// A fully-connected layer's weights and bias.
    Fc {
        /// Tensor-table index of the weight matrix.
        weights: usize,
        /// Tensor-table index of the bias vector.
        bias: usize,
    },
}

/// The parameters of one graph node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamEntry {
    /// The owning node's index in the graph.
    pub node: usize,
    /// Which tensors make up the node's parameters.
    pub kind: ParamKind,
}

/// The running BN statistics of one statistics-producing node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsEntry {
    /// The statistics-producer's node index in the graph.
    pub node: usize,
    /// Tensor-table index of the per-channel running mean.
    pub mean: usize,
    /// Tensor-table index of the per-channel running (biased) variance.
    pub var: usize,
}

/// Who wrote the artifact, from what.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// The writing tool and its version (`bnff-artifact 0.1.0`).
    pub created_by: String,
    /// A free-form description of the source (graph name, experiment tag).
    pub source: String,
    /// The *checkpoint* format version the model state was exported from —
    /// distinct from the artifact container version in the binary header.
    pub source_format_version: u32,
}

/// The artifact manifest: the model minus its bulk bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// The (training) graph topology, verbatim.
    pub graph: Graph,
    /// The tensor table; `ParamKind` and `StatsEntry` reference it by index.
    pub tensors: Vec<TensorEntry>,
    /// Parameter wiring, sorted by node index (deterministic bytes).
    pub params: Vec<ParamEntry>,
    /// Running-statistics wiring, sorted by node index.
    pub stats: Vec<StatsEntry>,
    /// The running-statistics EMA momentum.
    pub momentum: f32,
    /// Where the artifact came from.
    pub provenance: Provenance,
}

impl ParamKind {
    /// Every tensor-table index the entry references.
    pub fn tensor_refs(&self) -> Vec<usize> {
        match self {
            ParamKind::Conv { weights, bias } => {
                let mut v = vec![*weights];
                v.extend(bias.iter().copied());
                v
            }
            ParamKind::Bn { gamma, beta } => vec![*gamma, *beta],
            ParamKind::ConvBn { weights, bias, gamma, beta } => {
                let mut v = vec![*weights];
                v.extend(bias.iter().copied());
                v.push(*gamma);
                v.push(*beta);
                v
            }
            ParamKind::Fc { weights, bias } => vec![*weights, *bias],
        }
    }
}
