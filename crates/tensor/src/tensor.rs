//! The dense, contiguous, row-major `f32` tensor.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// All feature maps, weights and gradients in the bnff workspace are stored
/// in this type. The layout is row-major over the shape's dimensions; for
/// 4-D shapes this is the classic `NCHW` layout used by MKL-DNN and cuDNN in
/// the paper's reference implementation.
///
/// ```rust
/// use bnff_tensor::{Shape, Tensor};
/// let mut t = Tensor::zeros(Shape::nchw(1, 2, 2, 2));
/// *t.at_mut(0, 1, 1, 1) = 3.0;
/// assert_eq!(t.at(0, 1, 1, 1), 3.0);
/// assert_eq!(t.len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: Shape) -> Self {
        let volume = shape.volume();
        Tensor { shape, data: vec![0.0; volume] }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(shape: Shape) -> Self {
        Self::filled(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(shape: Shape, value: f32) -> Self {
        let volume = shape.volume();
        Tensor { shape, data: vec![value; volume] }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the shape's volume.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch { expected: shape.volume(), got: data.len() });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor { shape: Shape::vector(data.len()), data: data.to_vec() }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying buffer as an immutable slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying buffer as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access by 4-D index.
    ///
    /// # Panics
    /// Panics in debug builds if the shape is not 4-D or the index is out of
    /// bounds.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.offset4(n, c, h, w)]
    }

    /// Mutable element access by 4-D index.
    ///
    /// # Panics
    /// Panics in debug builds if the shape is not 4-D or the index is out of
    /// bounds.
    #[inline]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let idx = self.shape.offset4(n, c, h, w);
        &mut self.data[idx]
    }

    /// Element access by linear index.
    ///
    /// # Errors
    /// Returns [`TensorError::IndexOutOfBounds`] for an out-of-range index.
    pub fn get(&self, index: usize) -> Result<f32> {
        self.data
            .get(index)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds { index, len: self.data.len() })
    }

    /// Sets the element at a linear index.
    ///
    /// # Errors
    /// Returns [`TensorError::IndexOutOfBounds`] for an out-of-range index.
    pub fn set(&mut self, index: usize, value: f32) -> Result<()> {
        let len = self.data.len();
        match self.data.get_mut(index) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(TensorError::IndexOutOfBounds { index, len }),
        }
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Returns a new tensor with the same data and a different shape.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&self, dims: Vec<usize>) -> Result<Tensor> {
        let shape = self.shape.reshaped(dims)?;
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        self.data.iter_mut().for_each(|x| *x = f(*x));
    }

    /// Element-wise combination of two tensors of identical shape.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        self.shape.expect_same(&other.shape)?;
        let data = self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect();
        Ok(Tensor { shape: self.shape.clone(), data })
    }

    /// Immutable view of one sample's one channel (a contiguous `H×W` plane)
    /// of a 4-D tensor.
    ///
    /// # Panics
    /// Panics if the shape is not 4-D or the indices are out of bounds.
    pub fn channel_plane(&self, n: usize, c: usize) -> &[f32] {
        let h = self.shape.h();
        let w = self.shape.w();
        let start = self.shape.offset4(n, c, 0, 0);
        &self.data[start..start + h * w]
    }

    /// Mutable view of one sample's one channel plane of a 4-D tensor.
    ///
    /// # Panics
    /// Panics if the shape is not 4-D or the indices are out of bounds.
    pub fn channel_plane_mut(&mut self, n: usize, c: usize) -> &mut [f32] {
        let h = self.shape.h();
        let w = self.shape.w();
        let start = self.shape.offset4(n, c, 0, 0);
        &mut self.data[start..start + h * w]
    }

    /// Sum of all elements (f64 accumulation for robustness).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| f64::from(x)).sum()
    }

    /// Mean of all elements.
    ///
    /// Returns 0.0 for an empty tensor.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum element, or `None` for an empty tensor.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().fold(None, |acc, x| match acc {
            None => Some(x),
            Some(m) => Some(m.max(x)),
        })
    }

    /// Minimum element, or `None` for an empty tensor.
    pub fn min(&self) -> Option<f32> {
        self.data.iter().copied().fold(None, |acc, x| match acc {
            None => Some(x),
            Some(m) => Some(m.min(x)),
        })
    }

    /// Largest absolute difference between two tensors of identical shape.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        self.shape.expect_same(&other.shape)?;
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }

    /// Checks that every element of `self` is within `tol` of `other`.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn all_close(&self, other: &Tensor, tol: f32) -> Result<bool> {
        Ok(self.max_abs_diff(other)? <= tol)
    }

    /// Squared L2 norm of the tensor.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|&x| f64::from(x) * f64::from(x)).sum()
    }

    /// Number of bytes occupied by the element data.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(Shape::scalar())
    }
}

impl serde::Serialize for Tensor {
    /// Serializes as `{"shape": [dims...], "data": [values...]}`. Every
    /// finite `f32` is emitted in its shortest round-trip decimal form, so
    /// a serialize → deserialize cycle is bit-identical.
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(vec![
            ("shape".to_string(), serde::Serialize::to_value(self.shape.dims())),
            ("data".to_string(), serde::Serialize::to_value(&self.data)),
        ])
    }
}

impl serde::Deserialize for Tensor {
    fn from_value(value: &serde::value::Value) -> std::result::Result<Self, serde::DeError> {
        let dims: Vec<usize> = serde::Deserialize::from_value(
            value.get("shape").ok_or_else(|| serde::DeError::expected("tensor shape", value))?,
        )?;
        let data: Vec<f32> = serde::Deserialize::from_value(
            value.get("data").ok_or_else(|| serde::DeError::expected("tensor data", value))?,
        )?;
        Tensor::from_vec(Shape::new(dims), data)
            .map_err(|e| serde::DeError::new(format!("invalid tensor: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_fill() {
        let mut t = Tensor::zeros(Shape::nchw(2, 2, 2, 2));
        assert_eq!(t.len(), 16);
        assert_eq!(t.sum(), 0.0);
        t.fill(2.0);
        assert_eq!(t.sum(), 32.0);
        assert_eq!(t.mean(), 2.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(Shape::vector(3), vec![1.0, 2.0, 3.0]).is_ok());
        assert!(matches!(
            Tensor::from_vec(Shape::vector(4), vec![1.0, 2.0, 3.0]),
            Err(TensorError::LengthMismatch { expected: 4, got: 3 })
        ));
    }

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor::zeros(Shape::nchw(2, 3, 4, 5));
        let mut v = 0.0;
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..4 {
                    for w in 0..5 {
                        *t.at_mut(n, c, h, w) = v;
                        v += 1.0;
                    }
                }
            }
        }
        // Row-major means the last written value lands at the end of the buffer.
        assert_eq!(t.as_slice()[t.len() - 1], v - 1.0);
        assert_eq!(t.at(1, 2, 3, 4), v - 1.0);
    }

    #[test]
    fn get_set_bounds() {
        let mut t = Tensor::zeros(Shape::vector(4));
        assert!(t.set(3, 7.0).is_ok());
        assert_eq!(t.get(3).unwrap(), 7.0);
        assert!(t.get(4).is_err());
        assert!(t.set(4, 1.0).is_err());
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::filled(Shape::vector(4), 2.0);
        let b = Tensor::filled(Shape::vector(4), 3.0);
        let doubled = a.map(|x| x * 2.0);
        assert_eq!(doubled.as_slice(), &[4.0, 4.0, 4.0, 4.0]);
        let sum = a.zip_map(&b, |x, y| x + y).unwrap();
        assert_eq!(sum.as_slice(), &[5.0, 5.0, 5.0, 5.0]);
        let mismatched = Tensor::filled(Shape::vector(5), 1.0);
        assert!(a.zip_map(&mismatched, |x, y| x + y).is_err());
    }

    #[test]
    fn channel_plane_views() {
        let mut t = Tensor::zeros(Shape::nchw(2, 2, 2, 2));
        t.channel_plane_mut(1, 1).iter_mut().for_each(|x| *x = 5.0);
        assert_eq!(t.channel_plane(1, 1), &[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(t.channel_plane(0, 0), &[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(t.sum(), 20.0);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[-1.0, 4.0, 2.0, -7.0]);
        assert_eq!(t.max(), Some(4.0));
        assert_eq!(t.min(), Some(-7.0));
        assert_eq!(t.sum(), -2.0);
        assert!((t.sq_norm() - (1.0 + 16.0 + 4.0 + 49.0)).abs() < 1e-9);
        let empty = Tensor::zeros(Shape::vector(0));
        assert_eq!(empty.max(), None);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn closeness_checks() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[1.0, 2.001, 3.0]);
        assert!(a.all_close(&b, 0.01).unwrap());
        assert!(!a.all_close(&b, 0.0001).unwrap());
        assert!((a.max_abs_diff(&b).unwrap() - 0.001).abs() < 1e-6);
    }

    #[test]
    fn reshape_checks_volume() {
        let t = Tensor::zeros(Shape::nchw(2, 3, 4, 5));
        let r = t.reshape(vec![6, 20]).unwrap();
        assert_eq!(r.shape().rank(), 2);
        assert!(t.reshape(vec![5, 5]).is_err());
    }

    #[test]
    fn bytes_accounting() {
        let t = Tensor::zeros(Shape::nchw(1, 2, 3, 4));
        assert_eq!(t.bytes(), 24 * 4);
    }

    #[test]
    fn default_is_scalar_zero() {
        let t = Tensor::default();
        assert_eq!(t.len(), 1);
        assert_eq!(t.as_slice()[0], 0.0);
    }
}
