//! Per-channel mini-batch statistics.
//!
//! Batch Normalization during training needs, for every channel `c`, the
//! mean and (biased) variance of all `N × H × W` activations of that channel
//! across the mini-batch. The paper's Mean/Variance Fusion (MVF) replaces
//! the classic two-pass computation (one sweep for the mean, one for the
//! variance) with the single-sweep identity `Var[X] = E[X²] − E[X]²`.
//!
//! This module provides three interchangeable implementations —
//! [`channel_stats_two_pass`], [`channel_stats_one_pass`] and
//! [`channel_stats_welford`] — plus the raw Σx / Σx² accumulators
//! ([`ChannelAccumulator`]) that the fused `CONV + sub-BN1` kernel updates
//! while it writes its output feature map.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::simd::{self, active_isa};
use crate::tensor::Tensor;
use crate::Result;
use bnff_parallel::{min_items_per_thread, parallel_map_collect};

/// How many channels each worker should take for planes of `per_channel`
/// activations (each costing a few f64 operations).
fn channels_per_thread(per_channel: usize) -> usize {
    min_items_per_thread(per_channel.saturating_mul(4))
}

/// Per-channel mean and biased variance over a mini-batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelStats {
    /// Per-channel mean, `E[X]`.
    pub mean: Vec<f32>,
    /// Per-channel biased variance, `E[(X − E[X])²]`.
    pub var: Vec<f32>,
    /// Number of elements each channel's statistics were computed over
    /// (`N × H × W`).
    pub count: usize,
}

impl ChannelStats {
    /// Creates zeroed statistics for `channels` channels.
    pub fn zeros(channels: usize) -> Self {
        ChannelStats { mean: vec![0.0; channels], var: vec![0.0; channels], count: 0 }
    }

    /// Number of channels covered.
    pub fn channels(&self) -> usize {
        self.mean.len()
    }

    /// Largest absolute difference in mean or variance against `other`.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] when the channel counts
    /// differ.
    pub fn max_abs_diff(&self, other: &ChannelStats) -> Result<f32> {
        if self.channels() != other.channels() {
            return Err(TensorError::InvalidArgument(format!(
                "channel count mismatch: {} vs {}",
                self.channels(),
                other.channels()
            )));
        }
        let mut worst = 0.0f32;
        for c in 0..self.channels() {
            worst = worst.max((self.mean[c] - other.mean[c]).abs());
            worst = worst.max((self.var[c] - other.var[c]).abs());
        }
        Ok(worst)
    }
}

/// Running Σx and Σx² accumulators per channel.
///
/// This is the state the fused `CONV1-(sub-BN1)` kernel maintains: each
/// output value produced by the convolution is accumulated into the sums of
/// its channel, so mean and variance are available when the convolution
/// finishes without re-reading the output feature map (Section 3.2 of the
/// paper).
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelAccumulator {
    sum: Vec<f64>,
    sq_sum: Vec<f64>,
    count: usize,
}

impl ChannelAccumulator {
    /// Creates an accumulator for `channels` channels.
    pub fn new(channels: usize) -> Self {
        ChannelAccumulator { sum: vec![0.0; channels], sq_sum: vec![0.0; channels], count: 0 }
    }

    /// Number of channels tracked.
    pub fn channels(&self) -> usize {
        self.sum.len()
    }

    /// Number of per-channel elements accumulated so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Accumulates one activation of channel `c`.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    #[inline]
    pub fn push(&mut self, c: usize, value: f32) {
        let v = f64::from(value);
        self.sum[c] += v;
        self.sq_sum[c] += v * v;
    }

    /// Records that `per_channel_count` elements have been accumulated into
    /// every channel (call once per plane / batch rather than per element to
    /// keep `push` cheap).
    pub fn add_count(&mut self, per_channel_count: usize) {
        self.count += per_channel_count;
    }

    /// Accumulates an entire contiguous plane of channel `c`.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    pub fn push_plane(&mut self, c: usize, plane: &[f32]) {
        // Runs on the caller's thread, so the scoped `with_isa` override (if
        // any) is honoured here.
        let (s, q) = simd::sum_sq_f64(active_isa(), plane);
        self.sum[c] += s;
        self.sq_sum[c] += q;
    }

    /// Accumulates every channel of an NCHW tensor, with the per-channel
    /// sums computed across worker threads (one partial Σx/Σx² per channel,
    /// combined in channel order — the two-pass tree reduction that mirrors
    /// the paper's per-thread-block reduction on GPU). The result is
    /// identical for any `BNFF_THREADS` because each channel's planes are
    /// accumulated in the same mini-batch order a serial sweep uses.
    ///
    /// # Errors
    /// Returns an error for non-4-D or empty inputs.
    pub fn from_tensor(x: &Tensor) -> Result<Self> {
        let (channels, per_channel) = per_channel_count(x.shape())?;
        let n = x.shape().n();
        // Resolved on the caller's thread and captured by value: pool
        // workers don't inherit the caller's `with_isa` override.
        let isa = active_isa();
        let partials = parallel_map_collect(channels, channels_per_thread(per_channel), |c| {
            let mut sum = 0.0f64;
            let mut sq_sum = 0.0f64;
            for ni in 0..n {
                // Per-plane subtotals first, matching `push_plane`.
                let (s, q) = simd::sum_sq_f64(isa, x.channel_plane(ni, c));
                sum += s;
                sq_sum += q;
            }
            (sum, sq_sum)
        });
        let mut acc = ChannelAccumulator::new(channels);
        for (c, (s, q)) in partials.into_iter().enumerate() {
            acc.sum[c] = s;
            acc.sq_sum[c] = q;
        }
        acc.count = per_channel;
        Ok(acc)
    }

    /// Merges another accumulator into this one (used when per-thread
    /// accumulators are reduced, mirroring the paper's per-thread-block
    /// reduction on GPU).
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] when the channel counts
    /// differ.
    pub fn merge(&mut self, other: &ChannelAccumulator) -> Result<()> {
        if self.channels() != other.channels() {
            return Err(TensorError::InvalidArgument(format!(
                "cannot merge accumulators with {} and {} channels",
                self.channels(),
                other.channels()
            )));
        }
        for c in 0..self.channels() {
            self.sum[c] += other.sum[c];
            self.sq_sum[c] += other.sq_sum[c];
        }
        self.count += other.count;
        Ok(())
    }

    /// Finalizes the accumulator into mean / variance statistics using
    /// `Var[X] = E[X²] − E[X]²`.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidArgument`] if nothing was accumulated.
    pub fn finalize(&self) -> Result<ChannelStats> {
        if self.count == 0 {
            return Err(TensorError::InvalidArgument(
                "cannot finalize an empty accumulator".to_string(),
            ));
        }
        let n = self.count as f64;
        let mut mean = Vec::with_capacity(self.channels());
        let mut var = Vec::with_capacity(self.channels());
        for c in 0..self.channels() {
            let m = self.sum[c] / n;
            // Clamp at zero: E[X²] − E[X]² can go very slightly negative in
            // floating point when the variance is tiny.
            let v = (self.sq_sum[c] / n - m * m).max(0.0);
            mean.push(m as f32);
            var.push(v as f32);
        }
        Ok(ChannelStats { mean, var, count: self.count })
    }
}

fn per_channel_count(shape: &Shape) -> Result<(usize, usize)> {
    shape.expect_nchw()?;
    let per_channel = shape.n() * shape.h() * shape.w();
    if per_channel == 0 {
        return Err(TensorError::InvalidShape {
            reason: "statistics require a non-empty mini-batch".to_string(),
            shape: shape.clone(),
        });
    }
    Ok((shape.c(), per_channel))
}

/// Classic two-pass statistics: one sweep for the mean, a second sweep for
/// the variance. This models the *baseline* BN implementation whose extra
/// memory sweep MVF removes.
///
/// # Errors
/// Returns an error for non-4-D or empty inputs.
pub fn channel_stats_two_pass(x: &Tensor) -> Result<ChannelStats> {
    let (channels, per_channel) = per_channel_count(x.shape())?;
    let n = x.shape().n();
    let grain = channels_per_thread(per_channel);
    // Resolved on the caller's thread and captured by value: pool workers
    // don't inherit the caller's `with_isa` override.
    let isa = active_isa();
    // First sweep: per-channel mean, one worker partial per channel.
    let mean: Vec<f64> = parallel_map_collect(channels, grain, |c| {
        let mut m = 0.0f64;
        for ni in 0..n {
            m += simd::sum_f64(isa, x.channel_plane(ni, c));
        }
        m / per_channel as f64
    });
    // Second sweep: per-channel variance around the finished mean.
    let var: Vec<f64> = parallel_map_collect(channels, grain, |c| {
        let m = mean[c];
        let mut v_acc = 0.0f64;
        for ni in 0..n {
            v_acc += simd::sq_dev_sum_f64(isa, x.channel_plane(ni, c), m);
        }
        v_acc / per_channel as f64
    });
    Ok(ChannelStats {
        mean: mean.into_iter().map(|m| m as f32).collect(),
        var: var.into_iter().map(|v| v as f32).collect(),
        count: per_channel,
    })
}

/// Single-pass statistics using `Var[X] = E[X²] − E[X]²` (the paper's MVF).
///
/// # Errors
/// Returns an error for non-4-D or empty inputs.
pub fn channel_stats_one_pass(x: &Tensor) -> Result<ChannelStats> {
    ChannelAccumulator::from_tensor(x)?.finalize()
}

/// Numerically robust single-pass statistics using Welford's online
/// algorithm. Used as the "gold" reference when quantifying the floating
/// point error MVF introduces.
///
/// # Errors
/// Returns an error for non-4-D or empty inputs.
pub fn channel_stats_welford(x: &Tensor) -> Result<ChannelStats> {
    let (channels, per_channel) = per_channel_count(x.shape())?;
    let n = x.shape().n();
    // Welford's recurrence is sequential in its update order, so each
    // channel stays a serial chain; channels are independent and fan out.
    let per_channel_stats: Vec<(f64, f64)> =
        parallel_map_collect(channels, channels_per_thread(per_channel), |c| {
            let mut mean = 0.0f64;
            let mut m2 = 0.0f64;
            let mut count = 0.0f64;
            for ni in 0..n {
                for &v in x.channel_plane(ni, c) {
                    count += 1.0;
                    let value = f64::from(v);
                    let delta = value - mean;
                    mean += delta / count;
                    m2 += delta * (value - mean);
                }
            }
            (mean, if count > 0.0 { m2 / count } else { 0.0 })
        });
    Ok(ChannelStats {
        mean: per_channel_stats.iter().map(|&(m, _)| m as f32).collect(),
        var: per_channel_stats.iter().map(|&(_, v)| v as f32).collect(),
        count: per_channel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(shape: Shape, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..shape.volume()).map(|_| rng.gen_range(-2.0..2.0)).collect();
        Tensor::from_vec(shape, data).unwrap()
    }

    #[test]
    fn constant_tensor_has_zero_variance() {
        let x = Tensor::filled(Shape::nchw(4, 3, 2, 2), 2.5);
        for stats in [
            channel_stats_two_pass(&x).unwrap(),
            channel_stats_one_pass(&x).unwrap(),
            channel_stats_welford(&x).unwrap(),
        ] {
            for c in 0..3 {
                assert!((stats.mean[c] - 2.5).abs() < 1e-6);
                assert!(stats.var[c].abs() < 1e-6);
            }
            assert_eq!(stats.count, 4 * 2 * 2);
        }
    }

    #[test]
    fn all_three_methods_agree_on_random_data() {
        let x = random_tensor(Shape::nchw(8, 5, 7, 6), 42);
        let two = channel_stats_two_pass(&x).unwrap();
        let one = channel_stats_one_pass(&x).unwrap();
        let wel = channel_stats_welford(&x).unwrap();
        assert!(two.max_abs_diff(&one).unwrap() < 1e-4);
        assert!(two.max_abs_diff(&wel).unwrap() < 1e-4);
    }

    #[test]
    fn known_values() {
        // Channel 0: [1, 2, 3, 4] -> mean 2.5, var 1.25
        // Channel 1: [0, 0, 0, 8] -> mean 2.0, var 12.0
        let x =
            Tensor::from_vec(Shape::nchw(1, 2, 2, 2), vec![1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 8.0])
                .unwrap();
        let stats = channel_stats_two_pass(&x).unwrap();
        assert!((stats.mean[0] - 2.5).abs() < 1e-6);
        assert!((stats.var[0] - 1.25).abs() < 1e-6);
        assert!((stats.mean[1] - 2.0).abs() < 1e-6);
        assert!((stats.var[1] - 12.0).abs() < 1e-6);
    }

    #[test]
    fn accumulator_merge_matches_single() {
        let x = random_tensor(Shape::nchw(4, 3, 4, 4), 7);
        let full = channel_stats_one_pass(&x).unwrap();

        // Split the batch over two accumulators and merge, emulating the
        // per-thread-block reduction described for the GPU implementation.
        let mut a = ChannelAccumulator::new(3);
        let mut b = ChannelAccumulator::new(3);
        for ni in 0..4 {
            let target = if ni < 2 { &mut a } else { &mut b };
            for c in 0..3 {
                target.push_plane(c, x.channel_plane(ni, c));
            }
        }
        a.add_count(2 * 16);
        b.add_count(2 * 16);
        a.merge(&b).unwrap();
        let merged = a.finalize().unwrap();
        assert!(full.max_abs_diff(&merged).unwrap() < 1e-5);
    }

    #[test]
    fn accumulator_push_individual_elements() {
        let mut acc = ChannelAccumulator::new(1);
        for v in [1.0f32, 2.0, 3.0, 4.0] {
            acc.push(0, v);
        }
        acc.add_count(4);
        let stats = acc.finalize().unwrap();
        assert!((stats.mean[0] - 2.5).abs() < 1e-6);
        assert!((stats.var[0] - 1.25).abs() < 1e-6);
    }

    #[test]
    fn empty_accumulator_cannot_finalize() {
        let acc = ChannelAccumulator::new(4);
        assert!(acc.finalize().is_err());
    }

    #[test]
    fn merge_channel_mismatch_fails() {
        let mut a = ChannelAccumulator::new(2);
        let b = ChannelAccumulator::new(3);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn non_nchw_input_is_rejected() {
        let x = Tensor::zeros(Shape::matrix(3, 4));
        assert!(channel_stats_two_pass(&x).is_err());
        assert!(channel_stats_one_pass(&x).is_err());
        assert!(channel_stats_welford(&x).is_err());
    }

    #[test]
    fn stats_diff_channel_mismatch() {
        let a = ChannelStats::zeros(2);
        let b = ChannelStats::zeros(3);
        assert!(a.max_abs_diff(&b).is_err());
    }

    #[test]
    fn variance_never_negative_in_one_pass() {
        // Large offset makes E[X²] − E[X]² catastrophically cancel; the
        // one-pass implementation must clamp at zero.
        let x = Tensor::filled(Shape::nchw(2, 1, 8, 8), 10_000.0);
        let stats = channel_stats_one_pass(&x).unwrap();
        assert!(stats.var[0] >= 0.0);
    }
}
