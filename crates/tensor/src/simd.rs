//! Runtime SIMD dispatch, 32-byte-aligned scratch buffers, and the
//! vectorized reduction primitives the statistics kernels build on.
//!
//! Every hot kernel in the workspace comes in (at least) two flavours: the
//! portable scalar loop the crate has always shipped, and an explicit
//! AVX2+FMA `std::arch` implementation. Which one runs is decided *once per
//! kernel entry* by [`active_isa`], in priority order:
//!
//! 1. a scoped [`with_isa`] override on the calling thread (used by the
//!    equivalence tests and the `simd_over_scalar` benches),
//! 2. the `BNFF_SIMD` environment variable (`scalar` forces the portable
//!    path, `avx2` requests the vector path, `auto`/unset detects), and
//! 3. `is_x86_feature_detected!("avx2")` + `("fma")`.
//!
//! Requests for a vector ISA the hardware cannot run are clamped to
//! [`SimdIsa::Scalar`], so forcing `BNFF_SIMD=avx2` on an old machine
//! degrades instead of faulting. Kernels resolve the ISA on the *calling*
//! thread and pass the value into their worker closures — thread-local
//! overrides do not propagate into the `bnff-parallel` pool by themselves.
//!
//! ## Determinism contract
//!
//! Within one ISA the kernels stay bit-identical across `BNFF_THREADS`
//! (work is still partitioned at problem-granular boundaries and each
//! output element keeps a thread-count-independent accumulation order).
//! *Across* ISAs results may differ in the last bits: the AVX2 paths use
//! FMA contraction and lane-split accumulators, which round differently
//! from the scalar loops. The `simd_equivalence` suite bounds that
//! difference explicitly.
//!
//! ```rust
//! use bnff_tensor::simd::{active_isa, with_isa, SimdIsa};
//!
//! let forced = with_isa(SimdIsa::Scalar, active_isa);
//! assert_eq!(forced, SimdIsa::Scalar);
//! ```

use std::cell::Cell;
use std::ops::{Deref, DerefMut};
use std::sync::OnceLock;

/// An instruction-set flavour a kernel can execute with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdIsa {
    /// The portable scalar loops — the reference implementation and the
    /// fallback on hardware without AVX2+FMA.
    Scalar,
    /// Explicit 256-bit AVX2 intrinsics with FMA contraction.
    Avx2Fma,
}

impl SimdIsa {
    /// A stable lowercase name for bench artifacts and logs.
    pub fn name(self) -> &'static str {
        match self {
            SimdIsa::Scalar => "scalar",
            SimdIsa::Avx2Fma => "avx2+fma",
        }
    }

    /// The widest ISA the running CPU supports (ignoring every override).
    pub fn detected() -> SimdIsa {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        {
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                return SimdIsa::Avx2Fma;
            }
        }
        SimdIsa::Scalar
    }
}

impl std::fmt::Display for SimdIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

thread_local! {
    /// Scoped override installed by [`with_isa`].
    static ISA_OVERRIDE: Cell<Option<SimdIsa>> = const { Cell::new(None) };
}

/// Clamps a requested ISA to what the hardware can actually execute.
fn clamp_to_hardware(requested: SimdIsa) -> SimdIsa {
    match requested {
        SimdIsa::Scalar => SimdIsa::Scalar,
        other if SimdIsa::detected() == SimdIsa::Avx2Fma => other,
        _ => SimdIsa::Scalar,
    }
}

/// The process-wide default ISA: `BNFF_SIMD` when set (`scalar` | `avx2` |
/// `auto`; unknown values fall back to `auto`), otherwise hardware
/// detection. Read once per process.
fn env_isa() -> SimdIsa {
    static ENV: OnceLock<SimdIsa> = OnceLock::new();
    *ENV.get_or_init(|| {
        let requested = std::env::var("BNFF_SIMD").ok();
        match requested.as_deref().map(str::trim) {
            Some(s) if s.eq_ignore_ascii_case("scalar") => SimdIsa::Scalar,
            Some(s) if s.eq_ignore_ascii_case("avx2") || s.eq_ignore_ascii_case("avx2fma") => {
                clamp_to_hardware(SimdIsa::Avx2Fma)
            }
            _ => SimdIsa::detected(),
        }
    })
}

/// The ISA a kernel entered from this thread will execute with: the
/// innermost [`with_isa`] override if one is active, otherwise the
/// `BNFF_SIMD` / detection default. Always executable on this machine.
pub fn active_isa() -> SimdIsa {
    ISA_OVERRIDE.with(Cell::get).unwrap_or_else(env_isa)
}

/// Runs `f` with the calling thread's ISA pinned to `isa` (clamped to what
/// the hardware supports), restoring the previous setting afterwards — also
/// on panic. The override is thread-local: kernels capture the resolved ISA
/// at entry and carry it into their pool workers by value.
pub fn with_isa<R>(isa: SimdIsa, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<SimdIsa>);
    impl Drop for Restore {
        fn drop(&mut self) {
            ISA_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = ISA_OVERRIDE.with(|o| o.replace(Some(clamp_to_hardware(isa))));
    let _restore = Restore(prev);
    f()
}

/// One 32-byte-aligned chunk of eight `f32` lanes: the unit of storage
/// behind [`AlignedBuf`]. `size == align == 32`, so a `Vec<Lane>` is a
/// gap-free f32 carpet whose base pointer is 32-byte aligned.
#[repr(C, align(32))]
#[derive(Debug, Clone, Copy, Default)]
struct Lane([f32; 8]);

const LANE_F32S: usize = 8;

/// A growable `f32` buffer whose storage is guaranteed 32-byte aligned —
/// what `_mm256_load_ps` requires. `Vec<f32>` cannot promise alignment, so
/// the packed-GEMM panels (and any scratch consumed with aligned vector
/// loads) live in this type instead. Dereferences to `[f32]`.
///
/// ```rust
/// use bnff_tensor::simd::AlignedBuf;
///
/// let mut buf = AlignedBuf::zeroed(10);
/// assert_eq!(buf.as_ptr() as usize % 32, 0);
/// buf[9] = 4.0;
/// assert_eq!(buf.len(), 10);
/// ```
#[derive(Debug, Default)]
pub struct AlignedBuf {
    lanes: Vec<Lane>,
    len: usize,
}

impl AlignedBuf {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        AlignedBuf::default()
    }

    /// A zero-filled buffer of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        AlignedBuf { lanes: vec![Lane::default(); len.div_ceil(LANE_F32S)], len }
    }

    /// Number of accessible `f32` elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of `f32` elements the allocation can hold without growing.
    pub fn capacity(&self) -> usize {
        self.lanes.capacity() * LANE_F32S
    }

    /// Resizes to exactly `len` elements. Existing contents (and recycled
    /// lane remainders) are preserved, growth beyond the old lane count is
    /// zero-filled — the aligned analogue of `BufferPool::take_dirty`
    /// semantics: callers overwrite before reading.
    pub fn resize_dirty(&mut self, len: usize) {
        self.lanes.resize(len.div_ceil(LANE_F32S), Lane::default());
        self.len = len;
    }

    /// The elements as a plain `f32` slice (32-byte-aligned base pointer).
    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: `Lane` is `repr(C, align(32))` with size 32 and no
        // padding, so `lanes` is a contiguous run of `8 * lanes.len()`
        // initialized f32 values, and `len <= lanes.len() * 8` by
        // construction.
        unsafe { std::slice::from_raw_parts(self.lanes.as_ptr().cast::<f32>(), self.len) }
    }

    /// The elements as a mutable `f32` slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        // SAFETY: as in `as_slice`; the borrow is exclusive.
        unsafe { std::slice::from_raw_parts_mut(self.lanes.as_mut_ptr().cast::<f32>(), self.len) }
    }
}

impl Deref for AlignedBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl DerefMut for AlignedBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        self.as_mut_slice()
    }
}

/// `Σx` of a slice accumulated in `f64`, on the given ISA. The scalar path
/// is the exact sequential fold the statistics kernels have always used;
/// the AVX2 path converts eight lanes per step to `f64` and keeps four
/// partial sums, reduced in a fixed lane order (deterministic, but rounded
/// differently from the scalar fold).
pub fn sum_f64(isa: SimdIsa, x: &[f32]) -> f64 {
    match isa {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdIsa::Avx2Fma => {
            // SAFETY: `Avx2Fma` is only ever produced by `clamp_to_hardware`
            // / `SimdIsa::detected`, which verified avx2+fma at runtime.
            unsafe { avx2::sum_f64(x) }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        SimdIsa::Avx2Fma => sum_f64_scalar(x),
        SimdIsa::Scalar => sum_f64_scalar(x),
    }
}

/// `(Σx, Σx²)` of a slice accumulated in `f64`, on the given ISA — the MVF
/// one-pass statistics primitive. Scalar path matches the historical
/// element loop bit-for-bit; see [`sum_f64`] for the AVX2 rounding caveat.
pub fn sum_sq_f64(isa: SimdIsa, x: &[f32]) -> (f64, f64) {
    match isa {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdIsa::Avx2Fma => {
            // SAFETY: `Avx2Fma` implies runtime-verified avx2+fma support.
            unsafe { avx2::sum_sq_f64(x) }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        SimdIsa::Avx2Fma => sum_sq_f64_scalar(x),
        SimdIsa::Scalar => sum_sq_f64_scalar(x),
    }
}

/// `Σ(x − mean)²` of a slice accumulated in `f64`, on the given ISA — the
/// second sweep of the baseline two-pass variance.
pub fn sq_dev_sum_f64(isa: SimdIsa, x: &[f32], mean: f64) -> f64 {
    match isa {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        SimdIsa::Avx2Fma => {
            // SAFETY: `Avx2Fma` implies runtime-verified avx2+fma support.
            unsafe { avx2::sq_dev_sum_f64(x, mean) }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        SimdIsa::Avx2Fma => sq_dev_sum_f64_scalar(x, mean),
        SimdIsa::Scalar => sq_dev_sum_f64_scalar(x, mean),
    }
}

fn sum_f64_scalar(x: &[f32]) -> f64 {
    let mut s = 0.0f64;
    for &v in x {
        s += f64::from(v);
    }
    s
}

fn sum_sq_f64_scalar(x: &[f32]) -> (f64, f64) {
    let mut s = 0.0f64;
    let mut q = 0.0f64;
    for &v in x {
        let v = f64::from(v);
        s += v;
        q += v * v;
    }
    (s, q)
}

fn sq_dev_sum_f64_scalar(x: &[f32], mean: f64) -> f64 {
    let mut acc = 0.0f64;
    for &v in x {
        let d = f64::from(v) - mean;
        acc += d * d;
    }
    acc
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod avx2 {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Reduces four f64 lanes in a fixed left-to-right order, so the result
    /// depends only on the lane contents — never on thread count.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn hsum_pd(v: __m256d) -> f64 {
        let mut lanes = [0.0f64; 4];
        // SAFETY: `lanes` has room for all four f64 lanes.
        unsafe { _mm256_storeu_pd(lanes.as_mut_ptr(), v) };
        ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3]
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub fn sum_f64(x: &[f32]) -> f64 {
        let mut s = _mm256_setzero_pd();
        let chunks = x.chunks_exact(8);
        let tail = chunks.remainder();
        for chunk in chunks {
            // SAFETY: each chunk holds exactly eight f32 values.
            let v = unsafe { _mm256_loadu_ps(chunk.as_ptr()) };
            let lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
            let hi = _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(v));
            s = _mm256_add_pd(s, lo);
            s = _mm256_add_pd(s, hi);
        }
        let mut sum = hsum_pd(s);
        for &v in tail {
            sum += f64::from(v);
        }
        sum
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub fn sum_sq_f64(x: &[f32]) -> (f64, f64) {
        let mut s = _mm256_setzero_pd();
        let mut q = _mm256_setzero_pd();
        let chunks = x.chunks_exact(8);
        let tail = chunks.remainder();
        for chunk in chunks {
            // SAFETY: each chunk holds exactly eight f32 values.
            let v = unsafe { _mm256_loadu_ps(chunk.as_ptr()) };
            let lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
            let hi = _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(v));
            s = _mm256_add_pd(s, lo);
            s = _mm256_add_pd(s, hi);
            q = _mm256_fmadd_pd(lo, lo, q);
            q = _mm256_fmadd_pd(hi, hi, q);
        }
        let mut sum = hsum_pd(s);
        let mut sq = hsum_pd(q);
        for &v in tail {
            let v = f64::from(v);
            sum += v;
            sq += v * v;
        }
        (sum, sq)
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub fn sq_dev_sum_f64(x: &[f32], mean: f64) -> f64 {
        let m = _mm256_set1_pd(mean);
        let mut acc = _mm256_setzero_pd();
        let chunks = x.chunks_exact(8);
        let tail = chunks.remainder();
        for chunk in chunks {
            // SAFETY: each chunk holds exactly eight f32 values.
            let v = unsafe { _mm256_loadu_ps(chunk.as_ptr()) };
            let lo = _mm256_sub_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v)), m);
            let hi = _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps::<1>(v)), m);
            acc = _mm256_fmadd_pd(lo, lo, acc);
            acc = _mm256_fmadd_pd(hi, hi, acc);
        }
        let mut sum = hsum_pd(acc);
        for &v in tail {
            let d = f64::from(v) - mean;
            sum += d * d;
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 37 % 29) as f32 - 14.0) * 0.173).collect()
    }

    #[test]
    fn with_isa_overrides_and_restores() {
        let before = active_isa();
        with_isa(SimdIsa::Scalar, || {
            assert_eq!(active_isa(), SimdIsa::Scalar);
            with_isa(SimdIsa::Avx2Fma, || {
                // Clamped to hardware: either the real thing or Scalar.
                assert_eq!(active_isa(), clamp_to_hardware(SimdIsa::Avx2Fma));
            });
            assert_eq!(active_isa(), SimdIsa::Scalar);
        });
        assert_eq!(active_isa(), before);
    }

    #[test]
    fn active_isa_is_always_executable() {
        // Whatever the env/override state, the returned ISA must be one the
        // hardware can run.
        let isa = active_isa();
        if SimdIsa::detected() == SimdIsa::Scalar {
            assert_eq!(isa, SimdIsa::Scalar);
        }
    }

    #[test]
    fn isa_names_are_stable() {
        assert_eq!(SimdIsa::Scalar.name(), "scalar");
        assert_eq!(SimdIsa::Avx2Fma.name(), "avx2+fma");
        assert_eq!(format!("{}", SimdIsa::Scalar), "scalar");
    }

    #[test]
    fn aligned_buf_is_32_byte_aligned_and_sized() {
        for len in [0usize, 1, 7, 8, 9, 64, 100] {
            let mut buf = AlignedBuf::zeroed(len);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.is_empty(), len == 0);
            assert!(buf.iter().all(|&v| v == 0.0));
            if len > 0 {
                assert_eq!(buf.as_ptr() as usize % 32, 0, "len {len}");
                buf[len - 1] = 3.5;
                assert_eq!(buf[len - 1], 3.5);
            }
        }
    }

    #[test]
    fn aligned_buf_resize_preserves_prefix_and_alignment() {
        let mut buf = AlignedBuf::zeroed(4);
        buf.as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        buf.resize_dirty(19);
        assert_eq!(buf.len(), 19);
        assert_eq!(&buf[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(buf.as_ptr() as usize % 32, 0);
        buf.resize_dirty(2);
        assert_eq!(&buf[..], &[1.0, 2.0]);
        assert!(buf.capacity() >= 19);
    }

    #[test]
    fn scalar_reductions_match_the_historical_folds() {
        let x = data(103);
        let (s, q) = sum_sq_f64(SimdIsa::Scalar, &x);
        let mut es = 0.0f64;
        let mut eq = 0.0f64;
        for &v in &x {
            let v = f64::from(v);
            es += v;
            eq += v * v;
        }
        assert_eq!(s.to_bits(), es.to_bits());
        assert_eq!(q.to_bits(), eq.to_bits());
        assert_eq!(sum_f64(SimdIsa::Scalar, &x).to_bits(), es.to_bits());
        let m = es / x.len() as f64;
        let dev: f64 = x.iter().map(|&v| (f64::from(v) - m) * (f64::from(v) - m)).sum();
        assert_eq!(sq_dev_sum_f64(SimdIsa::Scalar, &x, m).to_bits(), dev.to_bits());
    }

    #[test]
    fn vector_reductions_agree_with_scalar_within_tolerance() {
        // On non-AVX2 hardware Avx2Fma clamps to Scalar and this becomes a
        // trivial identity check — intended, the suite must pass anywhere.
        let isa = clamp_to_hardware(SimdIsa::Avx2Fma);
        for n in [0usize, 1, 7, 8, 9, 31, 32, 33, 1023] {
            let x = data(n);
            let (s_ref, q_ref) = sum_sq_f64(SimdIsa::Scalar, &x);
            let (s, q) = sum_sq_f64(isa, &x);
            assert!((s - s_ref).abs() <= 1e-9 * (1.0 + s_ref.abs()), "n={n}: {s} vs {s_ref}");
            assert!((q - q_ref).abs() <= 1e-9 * (1.0 + q_ref.abs()), "n={n}: {q} vs {q_ref}");
            let sv = sum_f64(isa, &x);
            assert!((sv - s_ref).abs() <= 1e-9 * (1.0 + s_ref.abs()));
            let m = if n == 0 { 0.0 } else { s_ref / n as f64 };
            let d_ref = sq_dev_sum_f64(SimdIsa::Scalar, &x, m);
            let d = sq_dev_sum_f64(isa, &x, m);
            assert!((d - d_ref).abs() <= 1e-9 * (1.0 + d_ref.abs()));
        }
    }
}
