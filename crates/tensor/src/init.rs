//! Weight initializers.
//!
//! Deterministic, seedable initializers used by the models and the training
//! substrate. He initialization is the default for the ReLU networks the
//! paper evaluates (DenseNet, ResNet); Xavier is provided for completeness
//! and for the fully-connected classifier heads.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seedable random weight initializer.
///
/// ```rust
/// use bnff_tensor::{init::Initializer, Shape};
/// let mut init = Initializer::seeded(7);
/// let w = init.he_normal(Shape::nchw(64, 32, 3, 3), 32 * 3 * 3);
/// assert_eq!(w.len(), 64 * 32 * 3 * 3);
/// ```
#[derive(Debug)]
pub struct Initializer {
    rng: StdRng,
}

impl Initializer {
    /// Creates an initializer with a fixed seed (reproducible).
    pub fn seeded(seed: u64) -> Self {
        Initializer { rng: StdRng::seed_from_u64(seed) }
    }

    /// Draws a standard normal sample using the Box–Muller transform.
    fn standard_normal(&mut self) -> f32 {
        let u: f64 = Uniform::new(f64::EPSILON, 1.0).sample(&mut self.rng);
        let v: f64 = Uniform::new(0.0, std::f64::consts::TAU).sample(&mut self.rng);
        ((-2.0 * u.ln()).sqrt() * v.cos()) as f32
    }

    /// He (Kaiming) normal initialization: `N(0, sqrt(2 / fan_in))`.
    ///
    /// # Panics
    /// Panics if `fan_in` is zero.
    pub fn he_normal(&mut self, shape: Shape, fan_in: usize) -> Tensor {
        assert!(fan_in > 0, "fan_in must be positive");
        let std = (2.0 / fan_in as f64).sqrt() as f32;
        let data = (0..shape.volume()).map(|_| self.standard_normal() * std).collect();
        Tensor::from_vec(shape, data).expect("volume matches by construction")
    }

    /// Xavier/Glorot uniform initialization over
    /// `[-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out))]`.
    ///
    /// # Panics
    /// Panics if `fan_in + fan_out` is zero.
    pub fn xavier_uniform(&mut self, shape: Shape, fan_in: usize, fan_out: usize) -> Tensor {
        assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
        let dist = Uniform::new_inclusive(-limit, limit);
        let data = (0..shape.volume()).map(|_| dist.sample(&mut self.rng) as f32).collect();
        Tensor::from_vec(shape, data).expect("volume matches by construction")
    }

    /// Uniform initialization over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, shape: Shape, lo: f32, hi: f32) -> Tensor {
        assert!(lo < hi, "uniform bounds must satisfy lo < hi");
        let dist = Uniform::new(lo, hi);
        let data = (0..shape.volume()).map(|_| dist.sample(&mut self.rng)).collect();
        Tensor::from_vec(shape, data).expect("volume matches by construction")
    }

    /// Standard normal initialization scaled by `std`.
    pub fn normal(&mut self, shape: Shape, std: f32) -> Tensor {
        let data = (0..shape.volume()).map(|_| self.standard_normal() * std).collect();
        Tensor::from_vec(shape, data).expect("volume matches by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_normal_statistics() {
        let mut init = Initializer::seeded(1);
        let fan_in = 256;
        let w = init.he_normal(Shape::matrix(512, 256), fan_in);
        let mean = w.mean();
        let var = w.sq_norm() / w.len() as f64 - mean * mean;
        let expected_var = 2.0 / fan_in as f64;
        assert!(mean.abs() < 0.01, "mean {mean} too far from 0");
        assert!(
            (var - expected_var).abs() / expected_var < 0.1,
            "variance {var} too far from {expected_var}"
        );
    }

    #[test]
    fn xavier_uniform_bounds() {
        let mut init = Initializer::seeded(2);
        let w = init.xavier_uniform(Shape::matrix(100, 100), 100, 100);
        let limit = (6.0f64 / 200.0).sqrt() as f32;
        assert!(w.max().unwrap() <= limit);
        assert!(w.min().unwrap() >= -limit);
    }

    #[test]
    fn uniform_bounds() {
        let mut init = Initializer::seeded(3);
        let w = init.uniform(Shape::vector(1000), -0.5, 0.5);
        assert!(w.max().unwrap() < 0.5);
        assert!(w.min().unwrap() >= -0.5);
    }

    #[test]
    fn seeding_is_reproducible() {
        let mut a = Initializer::seeded(99);
        let mut b = Initializer::seeded(99);
        let wa = a.he_normal(Shape::vector(64), 8);
        let wb = b.he_normal(Shape::vector(64), 8);
        assert_eq!(wa, wb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Initializer::seeded(1);
        let mut b = Initializer::seeded(2);
        let wa = a.normal(Shape::vector(64), 1.0);
        let wb = b.normal(Shape::vector(64), 1.0);
        assert_ne!(wa, wb);
    }

    #[test]
    #[should_panic(expected = "fan_in must be positive")]
    fn he_normal_zero_fan_in_panics() {
        Initializer::seeded(0).he_normal(Shape::vector(4), 0);
    }
}
