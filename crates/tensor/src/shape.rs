//! Tensor shapes.
//!
//! A [`Shape`] is an ordered list of dimension extents. The crate is built
//! around 4-D `N × C × H × W` feature maps (mini-batch, channels, height,
//! width) because that is the layout the paper's layers operate on, but
//! shapes of any rank are supported (weights of a fully-connected layer are
//! 2-D, per-channel parameter vectors are 1-D).

use crate::error::TensorError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ordered list of dimension extents.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from an explicit list of dimensions.
    ///
    /// ```rust
    /// use bnff_tensor::Shape;
    /// let s = Shape::new(vec![2, 3]);
    /// assert_eq!(s.rank(), 2);
    /// assert_eq!(s.volume(), 6);
    /// ```
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Creates a 4-D `N × C × H × W` feature-map shape.
    ///
    /// ```rust
    /// use bnff_tensor::Shape;
    /// let s = Shape::nchw(120, 64, 56, 56);
    /// assert_eq!(s.n(), 120);
    /// assert_eq!(s.c(), 64);
    /// ```
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape { dims: vec![n, c, h, w] }
    }

    /// Creates a 2-D `rows × cols` matrix shape.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape { dims: vec![rows, cols] }
    }

    /// Creates a 1-D vector shape.
    pub fn vector(len: usize) -> Self {
        Shape { dims: vec![len] }
    }

    /// Creates a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape { dims: vec![] }
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The total number of elements described by this shape.
    ///
    /// A rank-0 (scalar) shape has volume 1.
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// The number of bytes occupied by a single-precision tensor of this
    /// shape.
    pub fn bytes_f32(&self) -> usize {
        self.volume() * std::mem::size_of::<f32>()
    }

    /// Returns the extent of dimension `axis`.
    ///
    /// # Errors
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.dims.get(axis).copied().ok_or(TensorError::AxisOutOfRange { axis, rank: self.rank() })
    }

    /// Returns `true` when this is a 4-D shape.
    pub fn is_nchw(&self) -> bool {
        self.rank() == 4
    }

    /// Mini-batch size of a 4-D shape.
    ///
    /// # Panics
    /// Panics if the shape is not 4-D; use [`Shape::dim`] for fallible
    /// access.
    pub fn n(&self) -> usize {
        assert!(self.is_nchw(), "n() requires a 4-D NCHW shape, got {self}");
        self.dims[0]
    }

    /// Channel count of a 4-D shape.
    ///
    /// # Panics
    /// Panics if the shape is not 4-D.
    pub fn c(&self) -> usize {
        assert!(self.is_nchw(), "c() requires a 4-D NCHW shape, got {self}");
        self.dims[1]
    }

    /// Spatial height of a 4-D shape.
    ///
    /// # Panics
    /// Panics if the shape is not 4-D.
    pub fn h(&self) -> usize {
        assert!(self.is_nchw(), "h() requires a 4-D NCHW shape, got {self}");
        self.dims[2]
    }

    /// Spatial width of a 4-D shape.
    ///
    /// # Panics
    /// Panics if the shape is not 4-D.
    pub fn w(&self) -> usize {
        assert!(self.is_nchw(), "w() requires a 4-D NCHW shape, got {self}");
        self.dims[3]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0usize; self.rank()];
        let mut acc = 1usize;
        for (i, d) in self.dims.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d.max(&1).to_owned();
        }
        strides
    }

    /// Linear (row-major) offset of a 4-D index.
    ///
    /// # Panics
    /// Panics if the shape is not 4-D or the index is out of bounds in debug
    /// builds.
    #[inline]
    pub fn offset4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(self.is_nchw());
        debug_assert!(n < self.dims[0] && c < self.dims[1] && h < self.dims[2] && w < self.dims[3]);
        ((n * self.dims[1] + c) * self.dims[2] + h) * self.dims[3] + w
    }

    /// Validates that this shape equals `other`, returning a descriptive
    /// error otherwise.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn expect_same(&self, other: &Shape) -> Result<(), TensorError> {
        if self == other {
            Ok(())
        } else {
            Err(TensorError::ShapeMismatch { expected: self.clone(), got: other.clone() })
        }
    }

    /// Validates that this shape is 4-D.
    ///
    /// # Errors
    /// Returns [`TensorError::InvalidShape`] for non-4-D shapes.
    pub fn expect_nchw(&self) -> Result<(), TensorError> {
        if self.is_nchw() {
            Ok(())
        } else {
            Err(TensorError::InvalidShape {
                reason: "expected a 4-D NCHW shape".to_string(),
                shape: self.clone(),
            })
        }
    }

    /// Returns a new shape with the same volume but different dimensions.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshaped(&self, dims: Vec<usize>) -> Result<Shape, TensorError> {
        let new = Shape::new(dims);
        if new.volume() == self.volume() {
            Ok(new)
        } else {
            Err(TensorError::LengthMismatch { expected: self.volume(), got: new.volume() })
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dims.is_empty() {
            return write!(f, "scalar");
        }
        let parts: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", parts.join("x"))
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nchw_accessors() {
        let s = Shape::nchw(2, 3, 5, 7);
        assert_eq!(s.n(), 2);
        assert_eq!(s.c(), 3);
        assert_eq!(s.h(), 5);
        assert_eq!(s.w(), 7);
        assert_eq!(s.volume(), 2 * 3 * 5 * 7);
        assert_eq!(s.bytes_f32(), 4 * 2 * 3 * 5 * 7);
        assert!(s.is_nchw());
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::nchw(2, 3, 5, 7);
        assert_eq!(s.strides(), vec![3 * 5 * 7, 5 * 7, 7, 1]);
    }

    #[test]
    fn offset4_matches_strides() {
        let s = Shape::nchw(2, 3, 5, 7);
        let strides = s.strides();
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..5 {
                    for w in 0..7 {
                        let expected = n * strides[0] + c * strides[1] + h * strides[2] + w;
                        assert_eq!(s.offset4(n, c, h, w), expected);
                    }
                }
            }
        }
    }

    #[test]
    fn scalar_volume_is_one() {
        assert_eq!(Shape::scalar().volume(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
        assert_eq!(Shape::scalar().to_string(), "scalar");
    }

    #[test]
    fn dim_out_of_range_errors() {
        let s = Shape::matrix(2, 3);
        assert_eq!(s.dim(0).unwrap(), 2);
        assert_eq!(s.dim(1).unwrap(), 3);
        assert!(matches!(s.dim(2), Err(TensorError::AxisOutOfRange { axis: 2, rank: 2 })));
    }

    #[test]
    fn expect_same_detects_mismatch() {
        let a = Shape::nchw(1, 2, 3, 4);
        let b = Shape::nchw(1, 2, 3, 5);
        assert!(a.expect_same(&a.clone()).is_ok());
        assert!(a.expect_same(&b).is_err());
    }

    #[test]
    fn expect_nchw_rejects_matrix() {
        assert!(Shape::matrix(3, 4).expect_nchw().is_err());
        assert!(Shape::nchw(1, 1, 1, 1).expect_nchw().is_ok());
    }

    #[test]
    fn reshape_preserves_volume() {
        let s = Shape::nchw(2, 3, 4, 5);
        let r = s.reshaped(vec![6, 20]).unwrap();
        assert_eq!(r.volume(), s.volume());
        assert!(s.reshaped(vec![7, 20]).is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::nchw(1, 2, 3, 4).to_string(), "1x2x3x4");
        assert_eq!(Shape::vector(9).to_string(), "9");
    }

    #[test]
    fn from_slice_and_vec() {
        let v = vec![4usize, 5, 6];
        let a: Shape = v.clone().into();
        let b: Shape = v.as_slice().into();
        assert_eq!(a, b);
        assert_eq!(a.rank(), 3);
    }
}
