//! Element-wise and reduction operations on tensors.
//!
//! These are the simple numerical helpers shared by the kernels and the
//! training loop: AXPY-style updates, element-wise arithmetic, scaling and
//! per-sample argmax for classification accuracy.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;
use bnff_parallel::{min_items_per_thread, parallel_rows_mut};

/// `out = a + b`, element-wise.
///
/// # Errors
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.zip_map(b, |x, y| x + y)
}

/// `out = a - b`, element-wise.
///
/// # Errors
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.zip_map(b, |x, y| x - y)
}

/// `out = a * b`, element-wise (Hadamard product).
///
/// # Errors
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.zip_map(b, |x, y| x * y)
}

/// `a += b`, element-wise, in place.
///
/// # Errors
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn add_assign(a: &mut Tensor, b: &Tensor) -> Result<()> {
    a.shape().expect_same(b.shape())?;
    let src = b.as_slice();
    parallel_rows_mut(a.as_mut_slice(), 1, min_items_per_thread(1), |offset, chunk| {
        let len = chunk.len();
        for (x, y) in chunk.iter_mut().zip(&src[offset..offset + len]) {
            *x += *y;
        }
    });
    Ok(())
}

/// `y += alpha * x`, the classic AXPY update used by SGD.
///
/// # Errors
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn axpy(alpha: f32, x: &Tensor, y: &mut Tensor) -> Result<()> {
    y.shape().expect_same(x.shape())?;
    let src = x.as_slice();
    parallel_rows_mut(y.as_mut_slice(), 1, min_items_per_thread(1), |offset, chunk| {
        let len = chunk.len();
        for (yi, xi) in chunk.iter_mut().zip(&src[offset..offset + len]) {
            *yi += alpha * *xi;
        }
    });
    Ok(())
}

/// Scales every element of `t` by `alpha` in place.
pub fn scale(t: &mut Tensor, alpha: f32) {
    t.map_inplace(|x| x * alpha);
}

/// Returns a scaled copy of `t`.
pub fn scaled(t: &Tensor, alpha: f32) -> Tensor {
    t.map(|x| x * alpha)
}

/// Linear interpolation `out = (1 - w) * a + w * b` used for running
/// statistics in Batch Normalization inference.
///
/// # Errors
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn lerp(a: &Tensor, b: &Tensor, w: f32) -> Result<Tensor> {
    a.zip_map(b, |x, y| (1.0 - w) * x + w * y)
}

/// Dot product of two tensors viewed as flat vectors.
///
/// # Errors
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn dot(a: &Tensor, b: &Tensor) -> Result<f64> {
    a.shape().expect_same(b.shape())?;
    Ok(a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum())
}

/// Per-sample argmax for an `N × K` score matrix (or an `N × K × 1 × 1`
/// feature map), as used to compute classification accuracy.
///
/// # Errors
/// Returns [`TensorError::InvalidShape`] if the tensor cannot be viewed as
/// `N × K`.
pub fn argmax_rows(scores: &Tensor, classes: usize) -> Result<Vec<usize>> {
    let volume = scores.len();
    if classes == 0 || !volume.is_multiple_of(classes) {
        return Err(TensorError::InvalidShape {
            reason: format!("cannot view {volume} elements as rows of {classes} classes"),
            shape: scores.shape().clone(),
        });
    }
    let rows = volume / classes;
    let data = scores.as_slice();
    let mut result = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &data[r * classes..(r + 1) * classes];
        let mut best = 0usize;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        result.push(best);
    }
    Ok(result)
}

/// Clips every element into `[lo, hi]` in place.
///
/// # Errors
/// Returns [`TensorError::InvalidArgument`] when `lo > hi`.
pub fn clamp(t: &mut Tensor, lo: f32, hi: f32) -> Result<()> {
    if lo > hi {
        return Err(TensorError::InvalidArgument(format!("clamp bounds inverted: {lo} > {hi}")));
    }
    t.map_inplace(|x| x.clamp(lo, hi));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn t(values: &[f32]) -> Tensor {
        Tensor::from_slice(values)
    }

    #[test]
    fn add_sub_mul() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(add(&a, &b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(sub(&b, &a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(mul(&a, &b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[1.0, 2.0, 3.0]);
        assert!(add(&a, &b).is_err());
        assert!(dot(&a, &b).is_err());
    }

    #[test]
    fn axpy_and_add_assign() {
        let x = t(&[1.0, 1.0, 1.0]);
        let mut y = t(&[1.0, 2.0, 3.0]);
        axpy(0.5, &x, &mut y).unwrap();
        assert_eq!(y.as_slice(), &[1.5, 2.5, 3.5]);
        add_assign(&mut y, &x).unwrap();
        assert_eq!(y.as_slice(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn scaling() {
        let mut a = t(&[2.0, 4.0]);
        scale(&mut a, 0.5);
        assert_eq!(a.as_slice(), &[1.0, 2.0]);
        assert_eq!(scaled(&a, 3.0).as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn lerp_running_stats() {
        let old = t(&[0.0, 10.0]);
        let new = t(&[10.0, 0.0]);
        let mixed = lerp(&old, &new, 0.1).unwrap();
        assert!((mixed.as_slice()[0] - 1.0).abs() < 1e-6);
        assert!((mixed.as_slice()[1] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn dot_product() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(dot(&a, &b).unwrap(), 32.0);
    }

    #[test]
    fn argmax_rows_basic() {
        let scores =
            Tensor::from_vec(Shape::matrix(2, 3), vec![0.1, 0.7, 0.2, 0.9, 0.05, 0.05]).unwrap();
        assert_eq!(argmax_rows(&scores, 3).unwrap(), vec![1, 0]);
    }

    #[test]
    fn argmax_rows_invalid_classes() {
        let scores = t(&[1.0, 2.0, 3.0]);
        assert!(argmax_rows(&scores, 2).is_err());
        assert!(argmax_rows(&scores, 0).is_err());
    }

    #[test]
    fn clamp_bounds() {
        let mut a = t(&[-2.0, 0.5, 3.0]);
        clamp(&mut a, 0.0, 1.0).unwrap();
        assert_eq!(a.as_slice(), &[0.0, 0.5, 1.0]);
        assert!(clamp(&mut a, 2.0, 1.0).is_err());
    }
}
