//! # bnff-tensor — dense NCHW tensor substrate
//!
//! The bnff reproduction needs a small, dependable dense-tensor library to
//! back the numerical CNN kernels and the statistics computations that Batch
//! Normalization performs over a mini-batch. This crate provides exactly
//! that: a contiguous, row-major `f32` tensor with first-class support for
//! the `N × C × H × W` layout used throughout the paper, plus the
//! per-channel statistics routines (two-pass, one-pass `E[X²]−E[X]²`, and
//! Welford) that the Mean/Variance-Fusion (MVF) analysis relies on.
//!
//! ## Example
//!
//! ```rust
//! use bnff_tensor::{Shape, Tensor};
//!
//! # fn main() -> Result<(), bnff_tensor::TensorError> {
//! let x = Tensor::filled(Shape::nchw(2, 3, 4, 4), 1.5);
//! let stats = bnff_tensor::stats::channel_stats_two_pass(&x)?;
//! assert_eq!(stats.mean.len(), 3);
//! assert!((stats.mean[0] - 1.5).abs() < 1e-6);
//! assert!(stats.var[0].abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod init;
pub mod ops;
pub mod pool;
pub mod shape;
pub mod simd;
pub mod stats;
pub mod tensor;

pub use error::TensorError;
pub use pool::BufferPool;
pub use shape::Shape;
pub use simd::{active_isa, with_isa, SimdIsa};
pub use stats::ChannelStats;
pub use tensor::Tensor;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
