//! A buffer arena that recycles tensor storage across operators and across
//! training steps.
//!
//! The paper's argument is that BN-era training is bound by memory traffic
//! over mini-batch activations; the executor therefore should not pay
//! allocator and page-fault costs for buffers the liveness analysis says can
//! be reused. [`BufferPool`] is the run-time half of that plan: dead tensors
//! release their `Vec<f32>` storage into the pool, and later allocations of
//! any shape are served best-fit from the free list instead of `malloc`.
//!
//! ```rust
//! use bnff_tensor::pool::BufferPool;
//! use bnff_tensor::{Shape, Tensor};
//!
//! let mut pool = BufferPool::new();
//! let t = pool.take_tensor(Shape::nchw(1, 2, 2, 2));
//! assert_eq!(t.len(), 8);
//! pool.reclaim(t);
//! assert_eq!(pool.free_buffers(), 1);
//! // The next request of any size up to the freed capacity reuses it.
//! let u = pool.take_tensor(Shape::vector(4));
//! assert_eq!(u.len(), 4);
//! assert_eq!(pool.free_buffers(), 0);
//! ```

use crate::shape::Shape;
use crate::simd::AlignedBuf;
use crate::tensor::Tensor;

/// A free-list of `Vec<f32>` buffers recycled between tensors.
///
/// Buffers are handed out best-fit (the smallest free buffer whose capacity
/// covers the request); requests no free buffer can serve allocate fresh
/// storage. The pool can be bounded: [`BufferPool::bounded`] caps the total
/// free bytes retained, dropping released buffers that would exceed the cap
/// (so a backward pass that releases more than the forward pass takes cannot
/// grow the pool without limit across training steps).
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<f32>>,
    /// Free list of 32-byte-aligned buffers, kept separate so aligned
    /// requests never receive plain `Vec<f32>` storage (and vice versa).
    free_aligned: Vec<AlignedBuf>,
    /// Running total of both free lists' capacity in bytes (kept
    /// incrementally so the byte-limit check in [`BufferPool::give`] is
    /// O(1)).
    free_bytes: usize,
    limit_bytes: Option<usize>,
    takes: usize,
    hits: usize,
}

impl BufferPool {
    /// Creates an unbounded pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Creates a pool that retains at most `limit_bytes` of free storage.
    pub fn bounded(limit_bytes: usize) -> Self {
        BufferPool { limit_bytes: Some(limit_bytes), ..BufferPool::default() }
    }

    /// Number of buffers currently on the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Total bytes of storage currently on the free list.
    pub fn free_bytes(&self) -> usize {
        self.free_bytes
    }

    /// Number of `take` requests served so far.
    pub fn takes(&self) -> usize {
        self.takes
    }

    /// Number of `take` requests served from the free list (not `malloc`).
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Pops the smallest free buffer whose capacity covers `len` (best
    /// fit), maintaining the hit/take accounting.
    fn pop_best_fit(&mut self, len: usize) -> Option<Vec<f32>> {
        self.takes += 1;
        let mut best: Option<usize> = None;
        for (i, buf) in self.free.iter().enumerate() {
            if buf.capacity() >= len {
                match best {
                    Some(b) if self.free[b].capacity() <= buf.capacity() => {}
                    _ => best = Some(i),
                }
            }
        }
        let i = best?;
        self.hits += 1;
        let buf = self.free.swap_remove(i);
        self.free_bytes -= buf.capacity() * std::mem::size_of::<f32>();
        Some(buf)
    }

    /// Takes a zero-filled buffer of exactly `len` elements, reusing the
    /// smallest free buffer whose capacity suffices (best fit).
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        match self.pop_best_fit(len) {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Takes a buffer of exactly `len` elements whose *contents are
    /// unspecified* (recycled data, or zeros on a pool miss): the cheap
    /// variant for callers that overwrite every element before reading
    /// any — it skips the zero fill [`BufferPool::take`] pays.
    pub fn take_dirty(&mut self, len: usize) -> Vec<f32> {
        match self.pop_best_fit(len) {
            Some(mut buf) => {
                // resize alone truncates or grows as needed; only growth
                // beyond the recycled length is (zero-)initialized.
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer's storage to the free list.
    ///
    /// Zero-capacity buffers are dropped, and a bounded pool drops the
    /// buffer when retaining it would exceed the byte limit.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        let incoming = buf.capacity() * std::mem::size_of::<f32>();
        if let Some(limit) = self.limit_bytes {
            if self.free_bytes + incoming > limit {
                return;
            }
        }
        self.free_bytes += incoming;
        self.free.push(buf);
    }

    /// Takes a 32-byte-aligned buffer of exactly `len` elements with
    /// *unspecified* contents (the [`BufferPool::take_dirty`] analogue for
    /// [`AlignedBuf`] storage) — what the packed-GEMM panels use so the
    /// microkernel can issue aligned vector loads.
    pub fn take_aligned_dirty(&mut self, len: usize) -> AlignedBuf {
        self.takes += 1;
        let mut best: Option<usize> = None;
        for (i, buf) in self.free_aligned.iter().enumerate() {
            if buf.capacity() >= len {
                match best {
                    Some(b) if self.free_aligned[b].capacity() <= buf.capacity() => {}
                    _ => best = Some(i),
                }
            }
        }
        match best {
            Some(i) => {
                self.hits += 1;
                let mut buf = self.free_aligned.swap_remove(i);
                self.free_bytes -= buf.capacity() * std::mem::size_of::<f32>();
                buf.resize_dirty(len);
                buf
            }
            None => AlignedBuf::zeroed(len),
        }
    }

    /// Returns an aligned buffer's storage to the free list (same byte
    /// limit as [`BufferPool::give`]).
    pub fn give_aligned(&mut self, buf: AlignedBuf) {
        if buf.capacity() == 0 {
            return;
        }
        let incoming = buf.capacity() * std::mem::size_of::<f32>();
        if let Some(limit) = self.limit_bytes {
            if self.free_bytes + incoming > limit {
                return;
            }
        }
        self.free_bytes += incoming;
        self.free_aligned.push(buf);
    }

    /// Takes a zero-filled tensor of the given shape from the pool.
    pub fn take_tensor(&mut self, shape: Shape) -> Tensor {
        let data = self.take(shape.volume());
        Tensor::from_vec(shape, data).expect("pool buffer sized to the shape's volume")
    }

    /// Releases a tensor's storage back into the pool.
    pub fn reclaim(&mut self, tensor: Tensor) {
        self.give(tensor.into_vec());
    }
}

impl Tensor {
    /// Releases this tensor's storage into `pool`, consuming the tensor.
    pub fn release_into(self, pool: &mut BufferPool) {
        pool.reclaim(self);
    }
}

/// A [`BufferPool`] behind a mutex, shareable across the worker threads of
/// the `bnff-parallel` pool and across training steps.
///
/// The packed-GEMM kernels keep their packing panels in a `static` instance
/// of this type, so a convolution's A/B panels are carved out of storage
/// recycled from the previous call (or the previous training step) instead
/// of `malloc`'d per GEMM. Construction is `const`, so it can back a
/// `static` without lazy initialization:
///
/// ```rust
/// use bnff_tensor::pool::SharedBufferPool;
///
/// static SCRATCH: SharedBufferPool = SharedBufferPool::bounded(1 << 20);
/// let buf = SCRATCH.take(128);
/// assert_eq!(buf.len(), 128);
/// SCRATCH.give(buf);
/// assert_eq!(SCRATCH.hits_and_takes(), (0, 1));
/// ```
#[derive(Debug)]
pub struct SharedBufferPool {
    inner: std::sync::Mutex<BufferPool>,
}

impl SharedBufferPool {
    const fn with_limit(limit_bytes: Option<usize>) -> Self {
        SharedBufferPool {
            inner: std::sync::Mutex::new(BufferPool {
                free: Vec::new(),
                free_aligned: Vec::new(),
                free_bytes: 0,
                limit_bytes,
                takes: 0,
                hits: 0,
            }),
        }
    }

    /// Creates an unbounded shared pool.
    pub const fn new() -> Self {
        Self::with_limit(None)
    }

    /// Creates a shared pool that retains at most `limit_bytes` of free
    /// storage (buffers released beyond the cap are dropped, exactly as in
    /// [`BufferPool::bounded`]).
    pub const fn bounded(limit_bytes: usize) -> Self {
        Self::with_limit(Some(limit_bytes))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BufferPool> {
        // The pool is pure scratch: a panic mid-`take`/`give` cannot leave
        // it in a state that is unsafe to reuse.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Takes a zero-filled buffer of exactly `len` elements (best fit).
    pub fn take(&self, len: usize) -> Vec<f32> {
        self.lock().take(len)
    }

    /// Takes a buffer of exactly `len` elements with *unspecified*
    /// contents (see [`BufferPool::take_dirty`]) — for callers that
    /// overwrite every element before reading any.
    pub fn take_dirty(&self, len: usize) -> Vec<f32> {
        self.lock().take_dirty(len)
    }

    /// Returns a buffer's storage to the free list.
    pub fn give(&self, buf: Vec<f32>) {
        self.lock().give(buf);
    }

    /// Takes a 32-byte-aligned buffer of exactly `len` elements with
    /// *unspecified* contents (see [`BufferPool::take_aligned_dirty`]).
    pub fn take_aligned_dirty(&self, len: usize) -> AlignedBuf {
        self.lock().take_aligned_dirty(len)
    }

    /// Returns an aligned buffer's storage to the free list.
    pub fn give_aligned(&self, buf: AlignedBuf) {
        self.lock().give_aligned(buf);
    }

    /// `(hits, takes)` served so far — the reuse rate of the pool.
    pub fn hits_and_takes(&self) -> (usize, usize) {
        let pool = self.lock();
        (pool.hits(), pool.takes())
    }

    /// Total bytes of storage currently on the free list.
    pub fn free_bytes(&self) -> usize {
        self.lock().free_bytes()
    }
}

impl Default for SharedBufferPool {
    fn default() -> Self {
        SharedBufferPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_even_after_reuse() {
        let mut pool = BufferPool::new();
        let mut t = pool.take_tensor(Shape::vector(4));
        t.fill(7.0);
        t.release_into(&mut pool);
        let u = pool.take(4);
        assert_eq!(u, vec![0.0; 4]);
    }

    #[test]
    fn take_dirty_skips_the_zero_fill_but_sizes_correctly() {
        let mut pool = BufferPool::new();
        let mut t = pool.take(8);
        t.fill(7.0);
        pool.give(t);
        // Reuse shorter than the recycled buffer: old contents survive.
        let d = pool.take_dirty(4);
        assert_eq!(d, vec![7.0; 4]);
        pool.give(d);
        // Growth within capacity: recycled prefix kept, growth zeroed.
        let d = pool.take_dirty(6);
        assert_eq!(&d[..4], &[7.0; 4]);
        assert_eq!(&d[4..], &[0.0; 2]);
        // A miss still allocates initialized storage.
        let fresh = pool.take_dirty(100);
        assert_eq!(fresh, vec![0.0; 100]);
    }

    #[test]
    fn best_fit_prefers_the_smallest_sufficient_buffer() {
        let mut pool = BufferPool::new();
        pool.give(vec![0.0; 100]);
        pool.give(vec![0.0; 8]);
        pool.give(vec![0.0; 16]);
        let buf = pool.take(10);
        assert_eq!(buf.len(), 10);
        // The 16-element buffer was chosen; 100 and 8 remain free.
        let caps: Vec<usize> = pool.free.iter().map(Vec::capacity).collect();
        assert!(caps.contains(&100) && caps.contains(&8));
        assert_eq!(pool.free_buffers(), 2);
    }

    #[test]
    fn misses_allocate_fresh_storage() {
        let mut pool = BufferPool::new();
        pool.give(vec![0.0; 2]);
        let buf = pool.take(1000);
        assert_eq!(buf.len(), 1000);
        assert_eq!(pool.hits(), 0);
        assert_eq!(pool.takes(), 1);
        // The too-small buffer is still available.
        assert_eq!(pool.free_buffers(), 1);
    }

    #[test]
    fn hit_accounting() {
        let mut pool = BufferPool::new();
        pool.reclaim(Tensor::zeros(Shape::vector(32)));
        let _ = pool.take(32);
        let _ = pool.take(32);
        assert_eq!(pool.takes(), 2);
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn bounded_pool_drops_overflow() {
        let mut pool = BufferPool::bounded(16 * std::mem::size_of::<f32>());
        pool.give(vec![0.0; 16]);
        assert_eq!(pool.free_buffers(), 1);
        // A second buffer would exceed the cap, so it is dropped.
        pool.give(vec![0.0; 16]);
        assert_eq!(pool.free_buffers(), 1);
        // Tiny buffers that still fit are kept after the big one leaves.
        let _ = pool.take(16);
        pool.give(vec![0.0; 8]);
        assert_eq!(pool.free_buffers(), 1);
    }

    #[test]
    fn empty_buffers_are_not_retained() {
        let mut pool = BufferPool::new();
        pool.give(Vec::new());
        assert_eq!(pool.free_buffers(), 0);
    }

    #[test]
    fn shared_pool_recycles_across_threads() {
        static POOL: SharedBufferPool = SharedBufferPool::new();
        let buf = POOL.take(64);
        POOL.give(buf);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let b = POOL.take(16);
                    assert_eq!(b, vec![0.0; 16]);
                    POOL.give(b);
                });
            }
        });
        let (hits, takes) = POOL.hits_and_takes();
        assert_eq!(takes, 5);
        assert!(hits >= 1, "at least the first reuse must hit the free list");
        assert!(POOL.free_bytes() > 0);
    }

    #[test]
    fn aligned_takes_stay_32_byte_aligned_across_reuse() {
        let mut pool = BufferPool::new();
        let mut a = pool.take_aligned_dirty(100);
        assert_eq!(a.as_ptr() as usize % 32, 0);
        a.as_mut_slice().fill(7.0);
        pool.give_aligned(a);
        assert!(pool.free_bytes() > 0);
        // Reuse (smaller and larger-within-capacity) keeps the alignment.
        let b = pool.take_aligned_dirty(40);
        assert_eq!(b.as_ptr() as usize % 32, 0);
        assert_eq!(b.len(), 40);
        assert_eq!(pool.hits(), 1);
        pool.give_aligned(b);
        let c = pool.take_aligned_dirty(104);
        assert_eq!(c.as_ptr() as usize % 32, 0);
        assert_eq!(c.len(), 104);
    }

    #[test]
    fn aligned_and_plain_free_lists_are_disjoint() {
        let mut pool = BufferPool::new();
        pool.give(vec![0.0; 256]);
        // The plain buffer must not satisfy an aligned request.
        let a = pool.take_aligned_dirty(64);
        assert_eq!(pool.hits(), 0);
        pool.give_aligned(a);
        // And the aligned buffer must not satisfy a plain request.
        let _ = pool.take(64);
        assert_eq!(pool.hits(), 1, "plain take must hit the plain 256-entry");
        assert_eq!(pool.free_buffers(), 0);
    }

    #[test]
    fn shared_pool_serves_aligned_buffers() {
        let pool = SharedBufferPool::new();
        let buf = pool.take_aligned_dirty(48);
        assert_eq!(buf.as_ptr() as usize % 32, 0);
        pool.give_aligned(buf);
        let again = pool.take_aligned_dirty(16);
        assert_eq!(again.as_ptr() as usize % 32, 0);
        let (hits, takes) = pool.hits_and_takes();
        assert_eq!((hits, takes), (1, 2));
    }

    #[test]
    fn shared_bounded_pool_honours_the_cap() {
        let pool = SharedBufferPool::bounded(16 * std::mem::size_of::<f32>());
        pool.give(vec![0.0; 16]);
        pool.give(vec![0.0; 16]);
        assert_eq!(pool.free_bytes(), 16 * std::mem::size_of::<f32>());
    }
}
