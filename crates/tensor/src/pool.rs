//! A buffer arena that recycles tensor storage across operators and across
//! training steps.
//!
//! The paper's argument is that BN-era training is bound by memory traffic
//! over mini-batch activations; the executor therefore should not pay
//! allocator and page-fault costs for buffers the liveness analysis says can
//! be reused. [`BufferPool`] is the run-time half of that plan: dead tensors
//! release their `Vec<f32>` storage into the pool, and later allocations of
//! any shape are served best-fit from the free list instead of `malloc`.
//!
//! ```rust
//! use bnff_tensor::pool::BufferPool;
//! use bnff_tensor::{Shape, Tensor};
//!
//! let mut pool = BufferPool::new();
//! let t = pool.take_tensor(Shape::nchw(1, 2, 2, 2));
//! assert_eq!(t.len(), 8);
//! pool.reclaim(t);
//! assert_eq!(pool.free_buffers(), 1);
//! // The next request of any size up to the freed capacity reuses it.
//! let u = pool.take_tensor(Shape::vector(4));
//! assert_eq!(u.len(), 4);
//! assert_eq!(pool.free_buffers(), 0);
//! ```

use crate::shape::Shape;
use crate::tensor::Tensor;

/// A free-list of `Vec<f32>` buffers recycled between tensors.
///
/// Buffers are handed out best-fit (the smallest free buffer whose capacity
/// covers the request); requests no free buffer can serve allocate fresh
/// storage. The pool can be bounded: [`BufferPool::bounded`] caps the total
/// free bytes retained, dropping released buffers that would exceed the cap
/// (so a backward pass that releases more than the forward pass takes cannot
/// grow the pool without limit across training steps).
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<f32>>,
    /// Running total of the free list's capacity in bytes (kept incrementally
    /// so the byte-limit check in [`BufferPool::give`] is O(1)).
    free_bytes: usize,
    limit_bytes: Option<usize>,
    takes: usize,
    hits: usize,
}

impl BufferPool {
    /// Creates an unbounded pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Creates a pool that retains at most `limit_bytes` of free storage.
    pub fn bounded(limit_bytes: usize) -> Self {
        BufferPool { limit_bytes: Some(limit_bytes), ..BufferPool::default() }
    }

    /// Number of buffers currently on the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Total bytes of storage currently on the free list.
    pub fn free_bytes(&self) -> usize {
        self.free_bytes
    }

    /// Number of `take` requests served so far.
    pub fn takes(&self) -> usize {
        self.takes
    }

    /// Number of `take` requests served from the free list (not `malloc`).
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Takes a zero-filled buffer of exactly `len` elements, reusing the
    /// smallest free buffer whose capacity suffices (best fit).
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        self.takes += 1;
        let mut best: Option<usize> = None;
        for (i, buf) in self.free.iter().enumerate() {
            if buf.capacity() >= len {
                match best {
                    Some(b) if self.free[b].capacity() <= buf.capacity() => {}
                    _ => best = Some(i),
                }
            }
        }
        match best {
            Some(i) => {
                self.hits += 1;
                let mut buf = self.free.swap_remove(i);
                self.free_bytes -= buf.capacity() * std::mem::size_of::<f32>();
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer's storage to the free list.
    ///
    /// Zero-capacity buffers are dropped, and a bounded pool drops the
    /// buffer when retaining it would exceed the byte limit.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        let incoming = buf.capacity() * std::mem::size_of::<f32>();
        if let Some(limit) = self.limit_bytes {
            if self.free_bytes + incoming > limit {
                return;
            }
        }
        self.free_bytes += incoming;
        self.free.push(buf);
    }

    /// Takes a zero-filled tensor of the given shape from the pool.
    pub fn take_tensor(&mut self, shape: Shape) -> Tensor {
        let data = self.take(shape.volume());
        Tensor::from_vec(shape, data).expect("pool buffer sized to the shape's volume")
    }

    /// Releases a tensor's storage back into the pool.
    pub fn reclaim(&mut self, tensor: Tensor) {
        self.give(tensor.into_vec());
    }
}

impl Tensor {
    /// Releases this tensor's storage into `pool`, consuming the tensor.
    pub fn release_into(self, pool: &mut BufferPool) {
        pool.reclaim(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_even_after_reuse() {
        let mut pool = BufferPool::new();
        let mut t = pool.take_tensor(Shape::vector(4));
        t.fill(7.0);
        t.release_into(&mut pool);
        let u = pool.take(4);
        assert_eq!(u, vec![0.0; 4]);
    }

    #[test]
    fn best_fit_prefers_the_smallest_sufficient_buffer() {
        let mut pool = BufferPool::new();
        pool.give(vec![0.0; 100]);
        pool.give(vec![0.0; 8]);
        pool.give(vec![0.0; 16]);
        let buf = pool.take(10);
        assert_eq!(buf.len(), 10);
        // The 16-element buffer was chosen; 100 and 8 remain free.
        let caps: Vec<usize> = pool.free.iter().map(Vec::capacity).collect();
        assert!(caps.contains(&100) && caps.contains(&8));
        assert_eq!(pool.free_buffers(), 2);
    }

    #[test]
    fn misses_allocate_fresh_storage() {
        let mut pool = BufferPool::new();
        pool.give(vec![0.0; 2]);
        let buf = pool.take(1000);
        assert_eq!(buf.len(), 1000);
        assert_eq!(pool.hits(), 0);
        assert_eq!(pool.takes(), 1);
        // The too-small buffer is still available.
        assert_eq!(pool.free_buffers(), 1);
    }

    #[test]
    fn hit_accounting() {
        let mut pool = BufferPool::new();
        pool.reclaim(Tensor::zeros(Shape::vector(32)));
        let _ = pool.take(32);
        let _ = pool.take(32);
        assert_eq!(pool.takes(), 2);
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn bounded_pool_drops_overflow() {
        let mut pool = BufferPool::bounded(16 * std::mem::size_of::<f32>());
        pool.give(vec![0.0; 16]);
        assert_eq!(pool.free_buffers(), 1);
        // A second buffer would exceed the cap, so it is dropped.
        pool.give(vec![0.0; 16]);
        assert_eq!(pool.free_buffers(), 1);
        // Tiny buffers that still fit are kept after the big one leaves.
        let _ = pool.take(16);
        pool.give(vec![0.0; 8]);
        assert_eq!(pool.free_buffers(), 1);
    }

    #[test]
    fn empty_buffers_are_not_retained() {
        let mut pool = BufferPool::new();
        pool.give(Vec::new());
        assert_eq!(pool.free_buffers(), 0);
    }
}
