//! Error types for the tensor substrate.

use crate::shape::Shape;
use std::fmt;

/// Errors produced by tensor construction and tensor operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Two tensors (or a tensor and an expected shape) did not agree.
    ShapeMismatch {
        /// The shape the operation expected.
        expected: Shape,
        /// The shape it actually received.
        got: Shape,
    },
    /// A shape was structurally invalid for the requested operation
    /// (e.g. a 3-D shape where a 4-D NCHW shape is required).
    InvalidShape {
        /// Human-readable description of the violated requirement.
        reason: String,
        /// The offending shape.
        shape: Shape,
    },
    /// The provided buffer length did not match the number of elements
    /// implied by the shape.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Length of the provided buffer.
        got: usize,
    },
    /// An index was outside the bounds of the tensor.
    IndexOutOfBounds {
        /// The offending linear index.
        index: usize,
        /// The number of elements in the tensor.
        len: usize,
    },
    /// An axis argument referred to a dimension the tensor does not have.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The rank of the tensor.
        rank: usize,
    },
    /// A numerical argument was invalid (e.g. a non-positive epsilon).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            TensorError::InvalidShape { reason, shape } => {
                write!(f, "invalid shape {shape}: {reason}")
            }
            TensorError::LengthMismatch { expected, got } => {
                write!(f, "buffer length {got} does not match shape volume {expected}")
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for tensor of {len} elements")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let err = TensorError::ShapeMismatch {
            expected: Shape::nchw(1, 2, 3, 4),
            got: Shape::nchw(4, 3, 2, 1),
        };
        let msg = err.to_string();
        assert!(msg.contains("shape mismatch"));
        assert!(msg.contains("1x2x3x4"));
        assert!(msg.contains("4x3x2x1"));
    }

    #[test]
    fn display_length_mismatch() {
        let err = TensorError::LengthMismatch { expected: 24, got: 10 };
        assert!(err.to_string().contains("24"));
        assert!(err.to_string().contains("10"));
    }

    #[test]
    fn display_axis_out_of_range() {
        let err = TensorError::AxisOutOfRange { axis: 5, rank: 4 };
        assert!(err.to_string().contains("axis 5"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<TensorError>();
    }
}
