//! Property-based tests for the tensor substrate.
//!
//! The key invariant for the paper's Mean/Variance Fusion is that the
//! one-pass `E[X²] − E[X]²` statistics agree with the two-pass and Welford
//! statistics for realistic activation magnitudes, so that the restructured
//! BN layer normalizes with the same mean/variance as the baseline.

use bnff_tensor::stats::{
    channel_stats_one_pass, channel_stats_two_pass, channel_stats_welford, ChannelAccumulator,
};
use bnff_tensor::{ops, Shape, Tensor};
use proptest::prelude::*;

fn small_nchw() -> impl Strategy<Value = Shape> {
    (1usize..5, 1usize..5, 1usize..7, 1usize..7).prop_map(|(n, c, h, w)| Shape::nchw(n, c, h, w))
}

fn tensor_with_shape(shape: Shape) -> impl Strategy<Value = Tensor> {
    let volume = shape.volume();
    prop::collection::vec(-10.0f32..10.0, volume)
        .prop_map(move |data| Tensor::from_vec(shape.clone(), data).unwrap())
}

fn arb_tensor() -> impl Strategy<Value = Tensor> {
    small_nchw().prop_flat_map(tensor_with_shape)
}

proptest! {
    #[test]
    fn one_pass_matches_two_pass(x in arb_tensor()) {
        let one = channel_stats_one_pass(&x).unwrap();
        let two = channel_stats_two_pass(&x).unwrap();
        prop_assert!(one.max_abs_diff(&two).unwrap() < 1e-3);
    }

    #[test]
    fn welford_matches_two_pass(x in arb_tensor()) {
        let wel = channel_stats_welford(&x).unwrap();
        let two = channel_stats_two_pass(&x).unwrap();
        prop_assert!(wel.max_abs_diff(&two).unwrap() < 1e-3);
    }

    #[test]
    fn variance_is_never_negative(x in arb_tensor()) {
        let one = channel_stats_one_pass(&x).unwrap();
        for v in &one.var {
            prop_assert!(*v >= 0.0);
        }
    }

    #[test]
    fn accumulator_split_merge_is_associative(x in arb_tensor()) {
        let c = x.shape().c();
        let n = x.shape().n();
        let plane_elems = x.shape().h() * x.shape().w();
        let full = channel_stats_one_pass(&x).unwrap();

        let mut left = ChannelAccumulator::new(c);
        let mut right = ChannelAccumulator::new(c);
        for ni in 0..n {
            let target = if ni % 2 == 0 { &mut left } else { &mut right };
            for ci in 0..c {
                target.push_plane(ci, x.channel_plane(ni, ci));
            }
            target.add_count(plane_elems);
        }
        left.merge(&right).unwrap();
        let merged = left.finalize().unwrap();
        prop_assert!(full.max_abs_diff(&merged).unwrap() < 1e-3);
    }

    #[test]
    fn add_commutes(x in arb_tensor()) {
        let y = x.map(|v| v * 0.5 + 1.0);
        let a = ops::add(&x, &y).unwrap();
        let b = ops::add(&y, &x).unwrap();
        prop_assert!(a.all_close(&b, 1e-6).unwrap());
    }

    #[test]
    fn axpy_matches_scaled_add(x in arb_tensor(), alpha in -2.0f32..2.0) {
        let y = x.map(|v| v - 3.0);
        let mut via_axpy = y.clone();
        ops::axpy(alpha, &x, &mut via_axpy).unwrap();
        let via_ops = ops::add(&y, &ops::scaled(&x, alpha)).unwrap();
        prop_assert!(via_axpy.all_close(&via_ops, 1e-4).unwrap());
    }

    #[test]
    fn reshape_preserves_sum(x in arb_tensor()) {
        let flat = x.reshape(vec![x.len()]).unwrap();
        prop_assert!((flat.sum() - x.sum()).abs() < 1e-6);
    }

    #[test]
    fn offsets_are_unique_and_dense(shape in small_nchw()) {
        let mut seen = vec![false; shape.volume()];
        for n in 0..shape.n() {
            for c in 0..shape.c() {
                for h in 0..shape.h() {
                    for w in 0..shape.w() {
                        let off = shape.offset4(n, c, h, w);
                        prop_assert!(off < seen.len());
                        prop_assert!(!seen[off]);
                        seen[off] = true;
                    }
                }
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }
}
