//! # bnff-bench — benchmark harness and figure regeneration binaries
//!
//! The Criterion benches (in `benches/`) measure the *real* CPU cost of the
//! fused vs unfused kernels at reduced scale — `training_step` additionally
//! pins the `bnff-parallel` pool to one worker and re-measures, so the
//! multi-core speedup is reported alongside the fusion win. The binaries
//! (in `src/bin/`) regenerate every table and figure of the paper from the
//! analytical machine model at the paper's scale. This library only hosts
//! the small table-printing helpers the binaries share.
//!
//! ## Example
//!
//! ```rust
//! use bnff_bench::{ms, pct, print_table};
//!
//! assert_eq!(pct(0.257), "25.7%");
//! assert_eq!(ms(0.0123), "12.3 ms");
//! print_table("speedups", &["model", "bnff"], &[vec!["densenet121".into(), pct(0.24)]]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use bnff_core::{BnffOptimizer, FusionLevel};
use bnff_models::densenet_cifar;
use bnff_train::Executor;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One measured kernel in a machine-readable bench report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelBench {
    /// Bench id, e.g. `"gemm_256_blocked_1t"`.
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Achieved GFLOP/s, for kernels with a known FLOP count.
    pub gflops: Option<f64>,
}

/// A machine-readable bench report (`BENCH_ci.json`): the perf-trajectory
/// artifact the CI `bench-smoke` job uploads on every push, so kernel
/// regressions show up as data instead of anecdotes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BenchReport {
    /// All measured kernels, in measurement order.
    pub records: Vec<KernelBench>,
    /// Derived headline numbers (speedups, reuse rates).
    pub summary: Vec<SummaryStat>,
}

/// One entry for [`BenchReport::measure_min_interleaved`]: bench name,
/// optional per-iteration FLOP count, and the closure to measure.
pub type InterleavedBench<'a> = (&'a str, Option<f64>, &'a mut (dyn FnMut() + 'a));

/// A derived headline number in a [`BenchReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SummaryStat {
    /// Stat id, e.g. `"gemm_256_blocked_over_streaming"`.
    pub name: String,
    /// The value (a ratio, rate or count — see the name).
    pub value: f64,
}

impl BenchReport {
    /// An empty report.
    pub fn new() -> Self {
        BenchReport::default()
    }

    /// Measures `f` (at least `min_iters` runs and `min_time` total) and
    /// records the mean ns/iter under `name`. When `flops` is given, the
    /// achieved GFLOP/s rides along. Returns the ns/iter.
    pub fn measure<F: FnMut()>(
        &mut self,
        name: &str,
        flops: Option<f64>,
        min_iters: usize,
        min_time: Duration,
        mut f: F,
    ) -> f64 {
        // One untimed warm-up run populates caches, pools and pages.
        f();
        let mut iters = 0u32;
        let start = Instant::now();
        while iters < min_iters as u32 || start.elapsed() < min_time {
            f();
            iters += 1;
        }
        let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
        self.records.push(KernelBench {
            name: name.to_string(),
            ns_per_iter: ns,
            gflops: flops.map(|fl| fl / ns),
        });
        ns
    }

    /// Measures a *set* of benches over `windows` interleaved timing
    /// rounds (one window of at least `min_iters` runs and `min_time` per
    /// bench per round), timing every run individually, and records each
    /// bench's *fastest single run*. Two properties make this the
    /// estimator for the records behind CI-gated ratios: interference from
    /// a shared host only ever slows a run down, so the per-run minimum is
    /// noise-robust against load spikes; and because the benches rotate
    /// through the same windows, each one samples every frequency/thermal
    /// regime the machine passes through — a sequential layout would hand
    /// whichever bench runs first the boost-clock budget and bias the
    /// ratio. Timer overhead bounds the resolution, so this fits the
    /// ms-scale end-to-end records, not the ns-scale kernels.
    pub fn measure_min_interleaved(
        &mut self,
        windows: usize,
        min_iters: usize,
        min_time: Duration,
        benches: &mut [InterleavedBench<'_>],
    ) {
        // One untimed warm-up run each populates caches, pools and pages.
        for (_, _, f) in benches.iter_mut() {
            f();
        }
        let mut best = vec![f64::INFINITY; benches.len()];
        for _ in 0..windows.max(1) {
            for (i, (_, _, f)) in benches.iter_mut().enumerate() {
                let mut iters = 0u32;
                let window = Instant::now();
                while iters < min_iters as u32 || window.elapsed() < min_time {
                    let run = Instant::now();
                    f();
                    best[i] = best[i].min(run.elapsed().as_nanos() as f64);
                    iters += 1;
                }
            }
        }
        for ((name, flops, _), ns) in benches.iter().zip(best) {
            self.records.push(KernelBench {
                name: name.to_string(),
                ns_per_iter: ns,
                gflops: flops.map(|fl| fl / ns),
            });
        }
    }

    /// ns/iter of a previously recorded bench.
    pub fn ns_of(&self, name: &str) -> Option<f64> {
        self.records.iter().find(|r| r.name == name).map(|r| r.ns_per_iter)
    }

    /// Speedup of `fast` over `slow` (`slow ns / fast ns`), when both exist.
    pub fn speedup(&self, fast: &str, slow: &str) -> Option<f64> {
        Some(self.ns_of(slow)? / self.ns_of(fast)?)
    }

    /// Records a derived headline number.
    pub fn summarize(&mut self, name: &str, value: f64) {
        self.summary.push(SummaryStat { name: name.to_string(), value });
    }

    /// Serializes the report as pretty-printed JSON.
    ///
    /// # Errors
    /// Returns an error when JSON serialization fails.
    pub fn to_json(&self) -> Result<String, Box<dyn std::error::Error>> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parses a report back from its JSON form.
    ///
    /// # Errors
    /// Returns an error on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, Box<dyn std::error::Error>> {
        Ok(serde_json::from_str(json)?)
    }

    /// Loads the report at `path`, or an empty report when the file does
    /// not exist — the append path the CI serve-smoke step uses to extend
    /// `BENCH_ci.json` with serving numbers.
    ///
    /// # Errors
    /// Returns an error when an existing file cannot be read or parsed.
    pub fn load_or_default(path: &std::path::Path) -> Result<Self, Box<dyn std::error::Error>> {
        match std::fs::read_to_string(path) {
            Ok(json) => Self::from_json(&json),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::new()),
            Err(e) => Err(Box::new(e)),
        }
    }
}

/// Builds the memory-planned executors the `training_step` bench measures:
/// one CIFAR-scale DenseNet per CPU-measured fusion level (Baseline, RCF,
/// RCF+MVF, BNFF), each carrying the [`bnff_graph::plan::ExecutionPlan`] its
/// forward/backward passes are driven by.
///
/// # Errors
/// Returns an error if a graph cannot be built, restructured or planned.
pub fn training_step_executors(
    batch: usize,
    seed: u64,
) -> Result<Vec<(FusionLevel, Executor)>, Box<dyn std::error::Error>> {
    let baseline = densenet_cifar(batch, 8, 2, 10)?;
    FusionLevel::measured()
        .into_iter()
        .map(|level| {
            let graph = BnffOptimizer::new(level).apply(&baseline)?;
            let exec = Executor::new(graph, seed)?;
            Ok((level, exec))
        })
        .collect()
}

/// A bench-id-friendly name for a fusion level (`rcf+mvf` → `rcf_mvf`).
pub fn level_bench_name(level: FusionLevel) -> String {
    level.label().to_lowercase().replace('+', "_")
}

/// Renders rows as a fixed-width text table with the given headers.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Formats seconds as milliseconds with one decimal.
pub fn ms(value: f64) -> String {
    format!("{:.1} ms", value * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.257), "25.7%");
        assert_eq!(ms(0.0123), "12.3 ms");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn training_step_harness_plans_every_measured_fusion_level() {
        let execs = training_step_executors(4, 3).unwrap();
        assert_eq!(execs.len(), FusionLevel::measured().len());
        for (level, exec) in &execs {
            let plan = exec.plan();
            assert!(
                plan.planned_peak_bytes() < plan.naive_total_bytes(),
                "{level}: planned {} not below naive {}",
                plan.planned_peak_bytes(),
                plan.naive_total_bytes()
            );
            assert!(plan.slot_count() >= 1, "{level}: no reusable slots");
        }
    }

    #[test]
    fn level_bench_names_are_identifier_friendly() {
        assert_eq!(level_bench_name(FusionLevel::RcfMvf), "rcf_mvf");
        assert_eq!(level_bench_name(FusionLevel::Baseline), "baseline");
    }
}
