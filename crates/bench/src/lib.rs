//! # bnff-bench — benchmark harness and figure regeneration binaries
//!
//! The Criterion benches (in `benches/`) measure the *real* CPU cost of the
//! fused vs unfused kernels at reduced scale — `training_step` additionally
//! pins the `bnff-parallel` pool to one worker and re-measures, so the
//! multi-core speedup is reported alongside the fusion win. The binaries
//! (in `src/bin/`) regenerate every table and figure of the paper from the
//! analytical machine model at the paper's scale. This library only hosts
//! the small table-printing helpers the binaries share.
//!
//! ## Example
//!
//! ```rust
//! use bnff_bench::{ms, pct, print_table};
//!
//! assert_eq!(pct(0.257), "25.7%");
//! assert_eq!(ms(0.0123), "12.3 ms");
//! print_table("speedups", &["model", "bnff"], &[vec!["densenet121".into(), pct(0.24)]]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Renders rows as a fixed-width text table with the given headers.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> =
        headers.iter().enumerate().map(|(i, h)| format!("{:width$}", h, width = widths[i])).collect();
    println!("{}", header_line.join("  "));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Formats seconds as milliseconds with one decimal.
pub fn ms(value: f64) -> String {
    format!("{:.1} ms", value * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.257), "25.7%");
        assert_eq!(ms(0.0123), "12.3 ms");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
