//! Regenerates Figure 3: memory-bandwidth utilization of DenseNet-121
//! layers over one training iteration.

use bnff_core::experiments::{figure3, PAPER_CPU_BATCH};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(PAPER_CPU_BATCH);
    let series = figure3(batch, 96)?;
    println!("== Figure 3 — bandwidth utilization over time (batch {batch}) ==");
    println!(
        "peak bandwidth: {:.1} GB/s, layer executions: {}",
        series.peak_bandwidth_gbs, series.events
    );
    println!(
        "average forward utilization: non-CONV {:.1}% vs CONV {:.1}%",
        series.non_conv_avg_utilization * 100.0,
        series.conv_avg_utilization * 100.0
    );
    println!("\ntime-bucketed utilization (one row per bucket, 60 cols = 100%):");
    for (i, u) in series.utilization.iter().enumerate() {
        let bars = (u * 60.0).round() as usize;
        println!("{:3} | {}{}", i, "#".repeat(bars), " ".repeat(60usize.saturating_sub(bars)));
    }
    println!("\n{}", serde_json::to_string_pretty(&series)?);
    Ok(())
}
