//! Regenerates Figure 4: BN and ReLU execution time with finite vs infinite
//! (hypothetical) memory bandwidth on DenseNet-121.

use bnff_bench::{ms, print_table};
use bnff_core::experiments::{figure4, PAPER_CPU_BATCH};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(PAPER_CPU_BATCH);
    let rows = figure4(batch)?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.layer.clone(),
                ms(r.finite_seconds),
                ms(r.infinite_seconds),
                format!("{:.1}x", r.speedup),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 4 — finite vs infinite memory bandwidth (batch {batch})"),
        &["layer", "finite BW", "infinite BW", "speedup"],
        &table,
    );
    println!("\n{}", serde_json::to_string_pretty(&rows)?);
    Ok(())
}
