//! Regenerates Figure 8: baseline vs BNFF at full (230.4 GB/s) and halved
//! (115.2 GB/s) memory bandwidth on DenseNet-121.

use bnff_bench::{ms, pct, print_table};
use bnff_core::experiments::{figure8, PAPER_CPU_BATCH};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(PAPER_CPU_BATCH);
    let rows = figure8(batch)?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}", r.bandwidth_gbs),
                r.scenario.clone(),
                ms(r.total_seconds),
                pct(r.non_conv_fraction),
                pct(r.bnff_improvement),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 8 — bandwidth sensitivity (batch {batch})"),
        &["BW (GB/s)", "scenario", "iteration", "non-CONV share", "BNFF gain"],
        &table,
    );
    println!("\n{}", serde_json::to_string_pretty(&rows)?);
    Ok(())
}
