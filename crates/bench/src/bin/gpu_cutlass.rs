//! Regenerates the Section 5 GPU evaluation: scenario improvements on a
//! Pascal Titan X profile (CUTLASS-style baseline, mini-batch 28).

use bnff_bench::{pct, print_table};
use bnff_core::experiments::gpu_cutlass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(28);
    let rows = gpu_cutlass(batch)?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.model.clone(), r.scenario.clone(), pct(r.improvement)])
        .collect();
    print_table(
        &format!("Section 5 (GPU) — scenario improvements (batch {batch})"),
        &["model", "scenario", "improvement"],
        &table,
    );
    println!("\n{}", serde_json::to_string_pretty(&rows)?);
    Ok(())
}
