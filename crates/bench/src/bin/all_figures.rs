//! Runs every experiment driver in sequence — the one-shot reproduction of
//! the paper's evaluation section. Results are printed as tables and dumped
//! as JSON to `experiment_results.json` in the working directory.

use bnff_bench::{ms, pct, print_table};
use bnff_core::experiments as exp;
use serde_json::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(exp::PAPER_CPU_BATCH);

    let table1 = exp::table1();
    print_table(
        "Table 1",
        &["architecture", "TFLOPS", "BW (GB/s)"],
        &table1
            .iter()
            .map(|r| {
                vec![
                    r.machine.clone(),
                    format!("{:.2}", r.tflops),
                    format!("{:.1}", r.bandwidth_gbs),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let fig1 = exp::figure1(batch)?;
    print_table(
        "Figure 1",
        &["model", "CONV/FC", "non-CONV"],
        &fig1
            .iter()
            .map(|r| vec![r.model.clone(), pct(r.conv_fc_fraction), pct(r.non_conv_fraction)])
            .collect::<Vec<_>>(),
    );

    let fig3 = exp::figure3(batch, 64)?;
    println!(
        "\n== Figure 3 == non-CONV avg utilization {} vs CONV {} over {} layer executions",
        pct(fig3.non_conv_avg_utilization),
        pct(fig3.conv_avg_utilization),
        fig3.events
    );

    let fig4 = exp::figure4(batch)?;
    print_table(
        "Figure 4",
        &["layer", "finite", "infinite", "speedup"],
        &fig4
            .iter()
            .map(|r| {
                vec![
                    r.layer.clone(),
                    ms(r.finite_seconds),
                    ms(r.infinite_seconds),
                    format!("{:.1}x", r.speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let fig6 = exp::figure6(1.0)?;
    print_table(
        "Figure 6",
        &["architecture", "batch", "CONV/FC", "non-CONV", "per image"],
        &fig6
            .iter()
            .map(|r| {
                vec![
                    r.machine.clone(),
                    r.batch.to_string(),
                    ms(r.conv_seconds),
                    ms(r.non_conv_seconds),
                    ms(r.per_image_seconds),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let fig7 = exp::figure7(batch)?;
    print_table(
        "Figure 7",
        &["model", "scenario", "total", "improv", "fwd", "bwd", "traffic -"],
        &fig7
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.scenario.clone(),
                    ms(r.total_seconds),
                    pct(r.improvement),
                    pct(r.fwd_improvement),
                    pct(r.bwd_improvement),
                    pct(r.traffic_reduction),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let fig8 = exp::figure8(batch)?;
    print_table(
        "Figure 8",
        &["BW (GB/s)", "scenario", "iteration", "BNFF gain"],
        &fig8
            .iter()
            .map(|r| {
                vec![
                    format!("{:.1}", r.bandwidth_gbs),
                    r.scenario.clone(),
                    ms(r.total_seconds),
                    pct(r.bnff_improvement),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let gpu = exp::gpu_cutlass(28)?;
    print_table(
        "Section 5 (GPU)",
        &["model", "scenario", "improvement"],
        &gpu.iter()
            .map(|r| vec![r.model.clone(), r.scenario.clone(), pct(r.improvement)])
            .collect::<Vec<_>>(),
    );

    let dump = json!({
        "batch": batch,
        "table1": table1,
        "figure1": fig1,
        "figure3": fig3,
        "figure4": fig4,
        "figure6": fig6,
        "figure7": fig7,
        "figure8": fig8,
        "gpu": gpu,
    });
    std::fs::write("experiment_results.json", serde_json::to_string_pretty(&dump)?)?;
    println!("\nwrote experiment_results.json");
    Ok(())
}
