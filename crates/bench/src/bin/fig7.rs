//! Regenerates Figure 7: execution time and memory accesses per training
//! iteration for Baseline / RCF / RCF+MVF / BNFF / BNFF+ICF on DenseNet-121
//! and ResNet-50 (Skylake profile, mini-batch 120).

use bnff_bench::{ms, pct, print_table};
use bnff_core::experiments::{figure7, PAPER_CPU_BATCH};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(PAPER_CPU_BATCH);
    let rows = figure7(batch)?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.scenario.clone(),
                ms(r.fwd_seconds),
                ms(r.bwd_seconds),
                ms(r.total_seconds),
                format!("{:.1} GB", r.dram_gb),
                pct(r.improvement),
                pct(r.fwd_improvement),
                pct(r.bwd_improvement),
                pct(r.traffic_reduction),
                format!("{:.2} GB", r.planned_peak_gb),
                format!("{:.2} GB", r.naive_activation_gb),
                pct(r.planner_reduction),
                format!("{:.1} GB", r.gemm_blocked_gb),
                pct(r.gemm_locality_reduction),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 7 — scenario sweep (batch {batch})"),
        &[
            "model",
            "scenario",
            "fwd",
            "bwd",
            "total",
            "DRAM",
            "improv",
            "fwd improv",
            "bwd improv",
            "traffic -",
            "plan peak",
            "naive act",
            "plan -",
            "gemm DRAM",
            "gemm loc -",
        ],
        &table,
    );
    println!("\n{}", serde_json::to_string_pretty(&rows)?);
    Ok(())
}
