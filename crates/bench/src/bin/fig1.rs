//! Regenerates Figure 1: execution-time breakdown (CONV/FC vs non-CONV) of
//! AlexNet, VGG-16, ResNet-50 and DenseNet-121 during training.

use bnff_bench::{ms, pct, print_table};
use bnff_core::experiments::{figure1, PAPER_CPU_BATCH};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(PAPER_CPU_BATCH);
    let rows = figure1(batch)?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                pct(r.conv_fc_fraction),
                pct(r.non_conv_fraction),
                ms(r.total_seconds),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 1 — execution-time breakdown (batch {batch})"),
        &["model", "CONV/FC", "non-CONV", "iteration"],
        &table,
    );
    println!("\n{}", serde_json::to_string_pretty(&rows)?);
    Ok(())
}
