//! Regenerates Figure 6: CONV/FC vs non-CONV execution time of DenseNet-121
//! on the GPU, KNL and Skylake profiles (per iteration and per image).

use bnff_bench::{ms, print_table};
use bnff_core::experiments::figure6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let rows = figure6(scale)?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.machine.clone(),
                r.batch.to_string(),
                ms(r.conv_seconds),
                ms(r.non_conv_seconds),
                ms(r.total_seconds),
                ms(r.per_image_seconds),
            ]
        })
        .collect();
    print_table(
        "Figure 6 — DenseNet-121 across architectures",
        &["architecture", "batch", "CONV/FC", "non-CONV", "iteration", "per image"],
        &table,
    );
    println!("\n{}", serde_json::to_string_pretty(&rows)?);
    Ok(())
}
