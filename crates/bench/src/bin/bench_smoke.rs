//! CI perf smoke: quick-mode measurements of the hot kernels, written as a
//! machine-readable `BENCH_ci.json` so every push leaves a perf-trajectory
//! data point (per-kernel ns/iter, GEMM GFLOP/s, and the blocked-vs-
//! streaming GEMM speedup the cache-blocked engine is accountable for).
//!
//! Usage: `cargo run --release --bin bench_smoke [-- OUTPUT.json]`
//! `BENCH_SMOKE_MS` overrides the per-bench measurement time (default 200).
//!
//! Alongside the kernel numbers, the smoke measures the paper's
//! inference-side payoff: a single-image forward pass through the frozen
//! (BN-folded) graph vs the training executor's eval-mode forward.

use bnff_bench::{print_table, training_step_executors, BenchReport};
use bnff_graph::op::Conv2dAttrs;
use bnff_kernels::conv::{conv2d_forward, conv2d_forward_direct};
use bnff_kernels::dispatch::{active_isa, with_isa, SimdIsa};
use bnff_kernels::gemm::{gemm, gemm_nt, gemm_streaming, gemm_tn, pack_pool_reuse};
use bnff_kernels::{affine, batchnorm, relu};
use bnff_parallel::with_threads;
use bnff_serve::{ServeEngine, ServeMetrics};
use bnff_tensor::init::Initializer;
use bnff_tensor::{Shape, Tensor};
use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

const GEMM_DIM: usize = 256;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_ci.json".to_string());
    let ms: u64 = std::env::var("BENCH_SMOKE_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(200);
    let budget = Duration::from_millis(ms);
    let mut report = BenchReport::new();

    // Which SIMD path produced every "active" record below; the scalar-named
    // records force the fallback for the simd_over_scalar ratios.
    let isa = active_isa();
    println!("simd dispatch: {isa}");

    // --- GEMM: the acceptance measurement. 256x256x256, one worker, so the
    // blocked-vs-streaming ratio isolates the packing/blocking win and the
    // scalar-vs-SIMD ratio isolates the microkernel win.
    let n = GEMM_DIM;
    let a: Vec<f32> = (0..n * n).map(|i| ((i * 37 % 13) as f32 - 6.0) * 0.25).collect();
    let b: Vec<f32> = (0..n * n).map(|i| ((i * 29 % 11) as f32 - 5.0) * 0.5).collect();
    let mut c = vec![0.0f32; n * n];
    let gemm_flops = 2.0 * (n * n * n) as f64;
    with_threads(1, || {
        report.measure("gemm_256_blocked_1t", Some(gemm_flops), 3, budget, || {
            gemm(n, n, n, 1.0, &a, &b, 0.0, &mut c).unwrap();
        });
        with_isa(SimdIsa::Scalar, || {
            report.measure("gemm_256_scalar_1t", Some(gemm_flops), 3, budget, || {
                gemm(n, n, n, 1.0, &a, &b, 0.0, &mut c).unwrap();
            });
        });
        report.measure("gemm_256_streaming_1t", Some(gemm_flops), 3, budget, || {
            gemm_streaming(n, n, n, 1.0, &a, &b, 0.0, &mut c).unwrap();
        });
        report.measure("gemm_nt_256_blocked_1t", Some(gemm_flops), 3, budget, || {
            gemm_nt(n, n, n, &a, &b, &mut c).unwrap();
        });
        report.measure("gemm_tn_256_blocked_1t", Some(gemm_flops), 3, budget, || {
            gemm_tn(n, n, n, &a, &b, &mut c).unwrap();
        });
        // Per-size GFLOP/s trajectory for the microkernel (same data,
        // leading sub-matrices keep the row stride at 256).
        for dim in [64usize, 128] {
            let mut c_small = vec![0.0f32; dim * dim];
            let a_small: Vec<f32> = (0..dim * dim).map(|i| a[i]).collect();
            let b_small: Vec<f32> = (0..dim * dim).map(|i| b[i]).collect();
            let flops = 2.0 * (dim * dim * dim) as f64;
            report.measure(&format!("gemm_{dim}_blocked_1t"), Some(flops), 3, budget, || {
                gemm(dim, dim, dim, 1.0, &a_small, &b_small, 0.0, &mut c_small).unwrap();
            });
        }
    });
    report.measure("gemm_256_blocked_mt", Some(gemm_flops), 3, budget, || {
        gemm(n, n, n, 1.0, &a, &b, 0.0, &mut c).unwrap();
    });

    // --- Convolution: packed im2col path vs the direct loop nest.
    let attrs = Conv2dAttrs::same_3x3(32);
    let mut init = Initializer::seeded(7);
    let x = init.uniform(Shape::nchw(4, 16, 16, 16), -1.0, 1.0);
    let w = init.uniform(Shape::nchw(32, 16, 3, 3), -1.0, 1.0);
    let conv_flops = 2.0 * (4 * 32 * 16 * 16) as f64 * (16 * 9) as f64;
    report.measure("conv3x3_im2col_packed", Some(conv_flops), 3, budget, || {
        conv2d_forward(&x, &w, None, &attrs).unwrap();
    });
    report.measure("conv3x3_direct", Some(conv_flops), 3, budget, || {
        conv2d_forward_direct(&x, &w, None, &attrs).unwrap();
    });

    // --- The BN-side kernels the paper restructures, active path vs the
    // forced scalar fallback (the bandwidth-bound side of the SIMD work).
    let bn_x = init.uniform(Shape::nchw(8, 32, 32, 32), -1.0, 1.0);
    let bn_params = batchnorm::BnParams::identity(32);
    report.measure("bn_forward_one_pass", None, 3, budget, || {
        batchnorm::bn_forward(&bn_x, &bn_params, 1e-5, true).unwrap();
    });
    report.measure("relu_forward", None, 3, budget, || {
        relu::relu_forward(&bn_x);
    });
    let aff_scale = vec![1.25f32; 32];
    let aff_shift = vec![-0.1f32; 32];
    let mut aff_out = Tensor::zeros(bn_x.shape().clone());
    report.measure("channel_affine_relu", None, 3, budget, || {
        affine::channel_affine_relu_into(&bn_x, &aff_scale, &aff_shift, &mut aff_out).unwrap();
    });
    with_isa(SimdIsa::Scalar, || {
        report.measure("bn_forward_one_pass_scalar", None, 3, budget, || {
            batchnorm::bn_forward(&bn_x, &bn_params, 1e-5, true).unwrap();
        });
        report.measure("relu_forward_scalar", None, 3, budget, || {
            relu::relu_forward(&bn_x);
        });
        report.measure("channel_affine_relu_scalar", None, 3, budget, || {
            affine::channel_affine_relu_into(&bn_x, &aff_scale, &aff_shift, &mut aff_out).unwrap();
        });
    });

    // --- One planned training step, baseline vs BNFF, at toy scale.
    let mut execs = training_step_executors(2, 5)?;
    let step_x = init.uniform(Shape::nchw(2, 3, 32, 32), -1.0, 1.0);
    let labels = vec![0usize, 1];
    for (level, exec) in &mut execs {
        let name = format!("training_step_{}", bnff_bench::level_bench_name(*level));
        report.measure(&name, None, 2, budget, || {
            let fwd = exec.forward(&step_x, &labels).unwrap();
            exec.backward(&fwd).unwrap();
        });
    }

    // --- Single-image forward: frozen (BN folded into the weights) vs the
    // training executor in eval mode — the BN-fold inference payoff.
    let single = bnff_models::densenet_cifar(1, 8, 2, 10)?;
    let single_exec = bnff_train::Executor::new(single, 9)?;
    let image = init.uniform(Shape::nchw(1, 3, 32, 32), -1.0, 1.0);
    let image_labels = vec![0usize];
    // The single-image records feed the CI-gated `tape_over_interpreted`
    // summary, so they use the interleaved min-of-windows estimator: a
    // host load spike cannot sink the ratio, and all three forwards sample
    // the same frequency/thermal regimes instead of the first one pocketing
    // the boost clock. `single_image_tape_forward` is the serving hot path
    // proper — the same frozen graph compiled to a linear instruction tape
    // (pre-resolved kernel recipes and arena offsets, no per-node
    // dispatch); the frozen record is its per-node interpreted baseline.
    // All three run under a pinned 4-worker pool, the condition the serve
    // engine actually executes under: per-node walkers fan every kernel
    // out to the pool, while the tape's compile-time FLOPs analysis pins
    // this sub-100-MFLOP model to one worker — that whole-program serial
    // hint is part of what the ratio measures, and pinning the pool size
    // makes the snapshot reproducible across hosts with different core
    // counts.
    let frozen = ServeEngine::builder().executor(&single_exec).build_model()?.executor(1)?;
    with_threads(4, || {
        report.measure_min_interleaved(
            7,
            3,
            budget,
            &mut [
                ("single_image_training_eval_forward", None, &mut || {
                    single_exec.forward_eval(&image, &image_labels).unwrap();
                }),
                ("single_image_frozen_forward", None, &mut || {
                    frozen.infer_interpreted(&image).unwrap();
                }),
                ("single_image_tape_forward", None, &mut || {
                    frozen.infer(&image).unwrap();
                }),
            ],
        );
    });

    // --- Observability overhead. Two measurements feed the CI-gated
    // `obs_overhead_pct` summary: the bare tape forward (tracing and
    // profiling disabled — the path every untraced request takes, one
    // relaxed atomic load per tape run), and the full per-request recording
    // sequence the serve engine runs on the lock-free registry (two clock
    // reads, three histogram records, a batch counter and a queue-depth
    // sample). The gate divides the directly-measured recording cost by
    // the forward cost rather than differencing two multi-millisecond
    // timings, whose run-to-run jitter dwarfs a sub-microsecond sequence.
    let obs_metrics = ServeMetrics::new();
    with_threads(4, || {
        report.measure("single_image_tape_obs_off", None, 3, budget, || {
            frozen.infer(&image).unwrap();
        });
    });
    report.measure("obs_record_sequence", None, 3, budget, || {
        let taken = Instant::now();
        let infer_time = taken.elapsed();
        obs_metrics.record_queue_wait(Duration::ZERO);
        obs_metrics.record_infer(infer_time);
        obs_metrics.record_batch(1);
        obs_metrics.record_queue_depth(0);
        obs_metrics.record_request(taken.elapsed());
    });

    // --- Per-op tape profile across the fusion ladder: measured ns per op
    // kind (the opt-in tape profiler) printed next to memsim's predicted
    // forward DRAM bytes for the same nodes — the measured-vs-modeled
    // side-by-side the paper's traffic argument rests on.
    const PROFILE_PASSES: u64 = 20;
    let machine = bnff_memsim::MachineProfile::skylake_xeon_2s();
    let profile_execs = training_step_executors(1, 5)?;
    for (idx, (level, exec)) in profile_execs.iter().enumerate() {
        let model = ServeEngine::builder().executor(exec).build_model()?;
        let tape = model.executor(1)?;
        let predicted = bnff_memsim::forward_dram_bytes(model.template(), &machine)?;
        let bytes_by_node: HashMap<_, f64> =
            predicted.iter().map(|o| (o.node, o.dram_bytes)).collect();
        tape.enable_profiling(true);
        for _ in 0..PROFILE_PASSES {
            tape.infer(&image)?;
        }
        // Aggregate the per-instruction spans by op kind; ns are per pass.
        let mut by_kind: BTreeMap<&'static str, (f64, f64)> = BTreeMap::new();
        for op in tape.profile() {
            let entry = by_kind.entry(op.kind).or_insert((0.0, 0.0));
            entry.0 += op.total_ns as f64 / PROFILE_PASSES as f64;
            entry.1 += bytes_by_node.get(&op.node).copied().unwrap_or(0.0);
        }
        let rows: Vec<Vec<String>> = by_kind
            .iter()
            .map(|(kind, (ns, bytes))| {
                vec![(*kind).to_string(), format!("{ns:.0}"), format!("{bytes:.0}")]
            })
            .collect();
        print_table(
            &format!("per-op profile L{idx} ({})", level.label()),
            &["op kind", "ns/pass", "predicted DRAM bytes"],
            &rows,
        );
        for (kind, (ns, bytes)) in &by_kind {
            report.summarize(&format!("op_profile_l{idx}_{kind}_ns"), *ns);
            report.summarize(&format!("op_profile_l{idx}_{kind}_bytes"), *bytes);
        }
    }

    // --- Model load: binary artifact vs JSON checkpoint, same model. This
    // is the deploy-path payoff the artifact format is accountable for —
    // the CI gate holds the binary path to ≥2x over JSON parsing.
    let load_dir = std::env::temp_dir().join(format!("bnff-bench-load-{}", std::process::id()));
    std::fs::create_dir_all(&load_dir)?;
    let artifact_path = load_dir.join("model.bnff");
    let json_path = load_dir.join("model.json");
    let checkpoint = bnff_train::checkpoint::Checkpoint::capture(&single_exec);
    checkpoint.write_artifact(&artifact_path)?;
    checkpoint.save(&json_path)?;
    report.measure_min_interleaved(
        7,
        3,
        budget,
        &mut [
            ("model_load_artifact", None, &mut || {
                bnff_train::checkpoint::Checkpoint::read_artifact(&artifact_path).unwrap();
            }),
            ("model_load_checkpoint_json", None, &mut || {
                bnff_train::checkpoint::Checkpoint::load(&json_path).unwrap();
            }),
        ],
    );
    let _ = std::fs::remove_dir_all(&load_dir);

    let blocked_speedup =
        report.speedup("gemm_256_blocked_1t", "gemm_256_streaming_1t").unwrap_or(0.0);
    report.summarize("gemm_256_blocked_over_streaming", blocked_speedup);
    // SIMD summaries: the dispatch marker (1.0 = the active path is
    // AVX2+FMA; CI skips the SIMD gates when 0), the active-path GFLOP/s
    // floor, and the SIMD-over-scalar ratios.
    report.summarize("simd_avx2", if isa == SimdIsa::Avx2Fma { 1.0 } else { 0.0 });
    let gemm_gflops = report
        .records
        .iter()
        .find(|r| r.name == "gemm_256_blocked_1t")
        .and_then(|r| r.gflops)
        .unwrap_or(0.0);
    report.summarize("gemm_gflops_256", gemm_gflops);
    let simd_gemm = report.speedup("gemm_256_blocked_1t", "gemm_256_scalar_1t").unwrap_or(0.0);
    report.summarize("simd_over_scalar_gemm_256", simd_gemm);
    let simd_bn =
        report.speedup("bn_forward_one_pass", "bn_forward_one_pass_scalar").unwrap_or(0.0);
    report.summarize("simd_over_scalar_bn_forward", simd_bn);
    let simd_relu = report.speedup("relu_forward", "relu_forward_scalar").unwrap_or(0.0);
    report.summarize("simd_over_scalar_relu", simd_relu);
    let simd_affine =
        report.speedup("channel_affine_relu", "channel_affine_relu_scalar").unwrap_or(0.0);
    report.summarize("simd_over_scalar_affine", simd_affine);
    let (hits, takes) = pack_pool_reuse();
    if takes > 0 {
        report.summarize("gemm_pack_pool_hit_rate", hits as f64 / takes as f64);
    }
    let frozen_speedup = report
        .speedup("single_image_frozen_forward", "single_image_training_eval_forward")
        .unwrap_or(0.0);
    report.summarize("frozen_over_training_single_image", frozen_speedup);
    let tape_speedup =
        report.speedup("single_image_tape_forward", "single_image_frozen_forward").unwrap_or(0.0);
    report.summarize("tape_over_interpreted", tape_speedup);
    let tape_over_training = report
        .speedup("single_image_tape_forward", "single_image_training_eval_forward")
        .unwrap_or(0.0);
    report.summarize("tape_over_training_single_image", tape_over_training);
    // Observability overhead: the per-request recording sequence as a
    // percentage of a single-image tape forward.
    let ns_of = |name: &str| {
        report.records.iter().find(|r| r.name == name).map(|r| r.ns_per_iter).unwrap_or(0.0)
    };
    let obs_off_ns = ns_of("single_image_tape_obs_off");
    let obs_record_ns = ns_of("obs_record_sequence");
    let obs_overhead_pct = if obs_off_ns > 0.0 { obs_record_ns / obs_off_ns * 100.0 } else { 0.0 };
    report.summarize("obs_overhead_pct", obs_overhead_pct);

    let load_ms = |name: &str| {
        report.records.iter().find(|r| r.name == name).map(|r| r.ns_per_iter / 1e6).unwrap_or(0.0)
    };
    let artifact_load_ms = load_ms("model_load_artifact");
    let checkpoint_load_ms = load_ms("model_load_checkpoint_json");
    report.summarize("artifact_load_ms", artifact_load_ms);
    report.summarize("checkpoint_load_ms", checkpoint_load_ms);
    let artifact_speedup =
        report.speedup("model_load_artifact", "model_load_checkpoint_json").unwrap_or(0.0);
    report.summarize("artifact_over_checkpoint_load", artifact_speedup);

    let rows: Vec<Vec<String>> = report
        .records
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.0}", r.ns_per_iter),
                r.gflops.map(|g| format!("{g:.2}")).unwrap_or_else(|| "-".to_string()),
            ]
        })
        .collect();
    print_table("bench smoke", &["kernel", "ns/iter", "GFLOP/s"], &rows);
    println!("\nsimd dispatch: {isa} (BNFF_SIMD overrides; scalar forces the fallback)");
    println!("gemm 256³ 1-thread: {gemm_gflops:.2} GFLOP/s, {simd_gemm:.2}x over scalar");
    println!(
        "simd over scalar — bn forward: {simd_bn:.2}x, relu: {simd_relu:.2}x, \
         affine+relu: {simd_affine:.2}x"
    );
    println!("blocked GEMM speedup over streaming (256³, 1 thread): {blocked_speedup:.2}x");
    println!(
        "frozen-graph speedup over training eval forward (single image): {frozen_speedup:.2}x"
    );
    println!("tape speedup over interpreted frozen walk (single image): {tape_speedup:.2}x");
    println!("observability per-request overhead: {obs_overhead_pct:.2}% (gate: <= 3%)");
    println!(
        "model load — artifact: {artifact_load_ms:.2} ms, json checkpoint: \
         {checkpoint_load_ms:.2} ms ({artifact_speedup:.2}x)"
    );

    std::fs::write(&out_path, report.to_json()?)?;
    println!("wrote {out_path}");
    Ok(())
}
