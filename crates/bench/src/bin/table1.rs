//! Regenerates Table 1: peak single-precision performance and peak memory
//! bandwidth of the evaluated data-parallel architectures.

use bnff_bench::print_table;
use bnff_core::experiments::table1;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = table1();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.machine.clone(),
                format!("{:.2}", r.tflops),
                format!("{:.1}", r.bandwidth_gbs),
                format!("{:.1}", r.flop_per_byte),
                r.batch.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 1 — peak performance and memory bandwidth",
        &["architecture", "TFLOPS", "BW (GB/s)", "FLOP/B", "mini-batch"],
        &table,
    );
    println!("\n{}", serde_json::to_string_pretty(&rows)?);
    Ok(())
}
