//! One Criterion bench per table / figure of the paper: each bench runs the
//! corresponding experiment driver end to end (model construction,
//! restructuring passes and the analytical machine model), so `cargo bench`
//! regenerates every number the paper reports and tracks the cost of doing
//! so.

use bnff_core::experiments as exp;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

const BATCH: usize = 120;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_machines", |b| b.iter(|| black_box(exp::table1())));
}

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_breakdown", |b| b.iter(|| black_box(exp::figure1(BATCH).unwrap())));
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_timeline", |b| b.iter(|| black_box(exp::figure3(BATCH, 64).unwrap())));
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_infinite_bw", |b| b.iter(|| black_box(exp::figure4(BATCH).unwrap())));
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_architectures", |b| b.iter(|| black_box(exp::figure6(1.0).unwrap())));
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_scenarios", |b| b.iter(|| black_box(exp::figure7(BATCH).unwrap())));
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_bandwidth", |b| b.iter(|| black_box(exp::figure8(BATCH).unwrap())));
}

fn bench_gpu(c: &mut Criterion) {
    c.bench_function("gpu_cutlass_scenarios", |b| {
        b.iter(|| black_box(exp::gpu_cutlass(28).unwrap()))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_table1, bench_fig1, bench_fig3, bench_fig4, bench_fig6, bench_fig7, bench_fig8, bench_gpu
}
criterion_main!(benches);
