//! Kernel-level ablation benches: the real CPU cost of the fused BNFF
//! kernels against their unfused compositions, plus the MVF statistics and
//! conv-lowering ablations called out in DESIGN.md.
//!
//! These run at reduced (CIFAR-ish) scale so `cargo bench` stays fast; the
//! paper-scale numbers come from the analytical model (`figures` bench and
//! the `src/bin` binaries).

use bnff_graph::op::Conv2dAttrs;
use bnff_kernels::batchnorm::{bn_forward, bn_statistics, BnParams};
use bnff_kernels::conv::{conv2d_forward_direct, conv2d_forward_im2col};
use bnff_kernels::fused::{conv2d_forward_with_stats, norm_relu_conv_forward, relu_conv_forward};
use bnff_kernels::relu::relu_forward;
use bnff_tensor::init::Initializer;
use bnff_tensor::stats::{channel_stats_one_pass, channel_stats_two_pass, channel_stats_welford};
use bnff_tensor::{Shape, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn tensors() -> (Tensor, Tensor, Tensor, Conv2dAttrs, Conv2dAttrs, BnParams) {
    let mut init = Initializer::seeded(42);
    let batch = 16;
    let x = init.uniform(Shape::nchw(batch, 32, 16, 16), -1.0, 1.0);
    let attrs1 = Conv2dAttrs::pointwise(64);
    let w1 = init.he_normal(Shape::nchw(64, 32, 1, 1), 32);
    let attrs2 = Conv2dAttrs::same_3x3(32);
    let w2 = init.he_normal(Shape::nchw(32, 64, 3, 3), 64 * 9);
    let bn = BnParams::identity(64);
    (x, w1, w2, attrs1, attrs2, bn)
}

/// CONV1-(sub-BN1): fused conv+stats vs conv followed by a separate
/// statistics sweep (the Fusion half of BNFF, forward).
fn bench_conv_stats(c: &mut Criterion) {
    let (x, w1, _, attrs1, _, _) = tensors();
    let mut group = c.benchmark_group("fused_conv_stats");
    group.bench_function("unfused_conv_then_stats", |b| {
        b.iter(|| {
            let out = conv2d_forward_direct(black_box(&x), &w1, None, &attrs1).unwrap();
            let stats = bn_statistics(&out, false).unwrap();
            black_box((out, stats))
        })
    });
    group.bench_function("fused_conv_with_stats", |b| {
        b.iter(|| black_box(conv2d_forward_with_stats(black_box(&x), &w1, None, &attrs1).unwrap()))
    });
    group.finish();
}

/// (sub-BN2)-ReLU-CONV2: fused normalize+clip+conv vs BN → ReLU → CONV.
fn bench_norm_relu_conv(c: &mut Criterion) {
    let (x, w1, w2, attrs1, attrs2, bn) = tensors();
    let conv1_out = conv2d_forward_direct(&x, &w1, None, &attrs1).unwrap();
    let stats = bn_statistics(&conv1_out, false).unwrap();
    let mut group = c.benchmark_group("fused_norm_relu_conv");
    group.bench_function("unfused_bn_relu_conv", |b| {
        b.iter(|| {
            let (y, _) = bn_forward(black_box(&conv1_out), &bn, 1e-5, false).unwrap();
            let r = relu_forward(&y);
            black_box(conv2d_forward_direct(&r, &w2, None, &attrs2).unwrap())
        })
    });
    group.bench_function("fused_norm_relu_conv", |b| {
        b.iter(|| {
            black_box(
                norm_relu_conv_forward(
                    black_box(&conv1_out),
                    &stats,
                    &bn,
                    1e-5,
                    &w2,
                    None,
                    &attrs2,
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

/// RCF: fused relu+conv vs ReLU followed by conv.
fn bench_relu_conv(c: &mut Criterion) {
    let (x, w1, _, attrs1, _, _) = tensors();
    let mut group = c.benchmark_group("rcf_relu_conv");
    group.bench_function("unfused_relu_then_conv", |b| {
        b.iter(|| {
            let r = relu_forward(black_box(&x));
            black_box(conv2d_forward_direct(&r, &w1, None, &attrs1).unwrap())
        })
    });
    group.bench_function("fused_relu_conv", |b| {
        b.iter(|| black_box(relu_conv_forward(black_box(&x), &w1, None, &attrs1).unwrap()))
    });
    group.finish();
}

/// MVF ablation: two-pass vs one-pass vs Welford statistics.
fn bench_mvf(c: &mut Criterion) {
    let mut init = Initializer::seeded(7);
    let x = init.uniform(Shape::nchw(32, 64, 16, 16), -2.0, 2.0);
    let mut group = c.benchmark_group("mvf_statistics");
    group.bench_function("two_pass", |b| {
        b.iter(|| black_box(channel_stats_two_pass(black_box(&x)).unwrap()))
    });
    group.bench_function("one_pass_mvf", |b| {
        b.iter(|| black_box(channel_stats_one_pass(black_box(&x)).unwrap()))
    });
    group.bench_function("welford", |b| {
        b.iter(|| black_box(channel_stats_welford(black_box(&x)).unwrap()))
    });
    group.finish();
}

/// Convolution-lowering ablation: direct loops vs im2col + GEMM.
fn bench_conv_lowering(c: &mut Criterion) {
    let mut init = Initializer::seeded(11);
    let x = init.uniform(Shape::nchw(8, 32, 16, 16), -1.0, 1.0);
    let attrs = Conv2dAttrs::same_3x3(32);
    let w = init.he_normal(Shape::nchw(32, 32, 3, 3), 32 * 9);
    let mut group = c.benchmark_group("conv_lowering");
    group.bench_function("direct", |b| {
        b.iter(|| black_box(conv2d_forward_direct(black_box(&x), &w, None, &attrs).unwrap()))
    });
    group.bench_function("im2col_gemm", |b| {
        b.iter(|| black_box(conv2d_forward_im2col(black_box(&x), &w, None, &attrs).unwrap()))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_conv_stats, bench_norm_relu_conv, bench_relu_conv, bench_mvf, bench_conv_lowering
}
criterion_main!(benches);
