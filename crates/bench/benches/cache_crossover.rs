//! Ablation: where does the BNFF benefit appear as feature maps grow past
//! the last-level cache?
//!
//! The paper's premise (Section 3.1) is that mini-batch feature maps are far
//! larger than on-chip buffers. This bench sweeps the spatial size of a
//! DenseNet-style fragment from CIFAR scale to ImageNet scale and measures
//! the analytical BNFF improvement at each point; the improvement should be
//! small while maps are cache-resident and large once they are not.

use bnff_core::{BnffOptimizer, FusionLevel};
use bnff_graph::builder::GraphBuilder;
use bnff_graph::op::Conv2dAttrs;
use bnff_graph::Graph;
use bnff_memsim::MachineProfile;
use bnff_tensor::Shape;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn fragment(batch: usize, spatial: usize) -> Graph {
    let mut b = GraphBuilder::new(format!("fragment-{spatial}"));
    let x = b.input("in", Shape::nchw(batch, 64, spatial, spatial)).unwrap();
    let c1 = b.bn_relu_conv(x, Conv2dAttrs::pointwise(128), "cpl/a").unwrap();
    let c2 = b.bn_relu_conv(c1, Conv2dAttrs::same_3x3(32), "cpl/b").unwrap();
    b.concat(vec![x, c2], "concat").unwrap();
    b.finish()
}

fn bench_crossover(c: &mut Criterion) {
    let machine = MachineProfile::skylake_xeon_2s();
    let optimizer = BnffOptimizer::new(FusionLevel::Bnff);
    let mut group = c.benchmark_group("cache_crossover");
    for spatial in [8usize, 16, 28, 56] {
        let graph = fragment(32, spatial);
        let restructured = optimizer.apply(&graph).unwrap();
        // Print the analytical improvement once so the crossover is visible
        // in the bench log, then benchmark the evaluation itself.
        let report = optimizer.compare(&graph, &restructured, &machine).unwrap();
        println!(
            "cache_crossover: spatial {spatial}x{spatial} -> BNFF improvement {:.1}%",
            report.improvement() * 100.0
        );
        group.bench_with_input(BenchmarkId::from_parameter(spatial), &spatial, |b, _| {
            b.iter(|| {
                let restructured = optimizer.apply(black_box(&graph)).unwrap();
                black_box(optimizer.compare(&graph, &restructured, &machine).unwrap())
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_crossover
}
criterion_main!(benches);
