//! End-to-end training-step bench: one forward + backward pass of a
//! CIFAR-scale DenseNet, executed numerically with the baseline graph and
//! with its BNFF-restructured twin.
//!
//! This measures the real arithmetic on the host CPU (the analytical model
//! handles the paper-scale projection); it demonstrates that the fused
//! executor path is functional and not slower than the baseline at equal
//! arithmetic.
//!
//! Every variant runs twice: pinned to one worker (`serial`) and with the
//! machine's full worker count (`parallel`, i.e. whatever `BNFF_THREADS`
//! resolves to), so the multi-core speedup of the kernel subsystem is
//! *measured* by the same harness that measures the fusion win.

use bnff_core::{BnffOptimizer, FusionLevel};
use bnff_models::densenet_cifar;
use bnff_parallel::{current_threads, with_threads};
use bnff_tensor::init::Initializer;
use bnff_tensor::Shape;
use bnff_train::Executor;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_training_step(c: &mut Criterion) {
    let batch = 8;
    let baseline_graph = densenet_cifar(batch, 8, 2, 10).unwrap();
    let bnff_graph = BnffOptimizer::new(FusionLevel::Bnff).apply(&baseline_graph).unwrap();
    let baseline = Executor::new(baseline_graph, 3).unwrap();
    let restructured = Executor::new(bnff_graph, 3).unwrap();
    let mut init = Initializer::seeded(5);
    let data = init.uniform(Shape::nchw(batch, 3, 32, 32), -1.0, 1.0);
    let labels: Vec<usize> = (0..batch).map(|i| i % 10).collect();
    let full_threads = current_threads();

    let mut group = c.benchmark_group("training_step_densenet_cifar");
    for (threads, suffix) in [(1usize, "serial"), (full_threads, "parallel")] {
        group.bench_function(format!("baseline_graph_{suffix}_t{threads}"), |b| {
            b.iter(|| {
                with_threads(threads, || {
                    let fwd = baseline.forward(black_box(&data), &labels).unwrap();
                    black_box(baseline.backward(&fwd).unwrap())
                })
            })
        });
        group.bench_function(format!("bnff_graph_{suffix}_t{threads}"), |b| {
            b.iter(|| {
                with_threads(threads, || {
                    let fwd = restructured.forward(black_box(&data), &labels).unwrap();
                    black_box(restructured.backward(&fwd).unwrap())
                })
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_training_step
}
criterion_main!(benches);
