//! End-to-end training-step bench: one forward + backward pass of a
//! CIFAR-scale DenseNet, executed numerically at every CPU-measured fusion
//! level (Baseline, RCF, RCF+MVF, BNFF).
//!
//! This measures the real arithmetic on the host CPU (the analytical model
//! handles the paper-scale projection); it demonstrates that the fused
//! executor path is functional and not slower than the baseline at equal
//! arithmetic.
//!
//! Every level runs through the memory-planned executor twice: pinned to one
//! worker (`serial`) and with the machine's full worker count (`parallel`,
//! i.e. whatever `BNFF_THREADS` resolves to), so the multi-core speedup of
//! the kernel subsystem is *measured* by the same harness that measures the
//! fusion win. For the baseline and BNFF graphs a reference entry pairs the
//! naive (one-buffer-per-node, retain-everything) forward with the shared
//! backward pass, so the planned forward's cost relative to the old
//! allocation behaviour is a bench result, not an assumption. (The backward
//! pass is common to both paths — its gradient buffers always recycle
//! through the executor pool — so the `*_naive_*` delta isolates the
//! forward-side planning.)

use bnff_bench::{level_bench_name, training_step_executors};
use bnff_core::FusionLevel;
use bnff_parallel::{current_threads, with_threads};
use bnff_tensor::init::Initializer;
use bnff_tensor::Shape;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_training_step(c: &mut Criterion) {
    let batch = 8;
    let execs = training_step_executors(batch, 3).unwrap();
    let mut init = Initializer::seeded(5);
    let data = init.uniform(Shape::nchw(batch, 3, 32, 32), -1.0, 1.0);
    let labels: Vec<usize> = (0..batch).map(|i| i % 10).collect();
    let full_threads = current_threads();

    let mut group = c.benchmark_group("training_step_densenet_cifar");
    for (level, exec) in &execs {
        let name = level_bench_name(*level);
        for (threads, suffix) in [(1usize, "serial"), (full_threads, "parallel")] {
            group.bench_function(format!("{name}_graph_{suffix}_t{threads}"), |b| {
                b.iter(|| {
                    with_threads(threads, || {
                        let fwd = exec.forward(black_box(&data), &labels).unwrap();
                        black_box(exec.backward(&fwd).unwrap())
                    })
                })
            });
        }
        // Planned vs naive executor comparison for the endpoint levels.
        if matches!(level, FusionLevel::Baseline | FusionLevel::Bnff) {
            group.bench_function(format!("{name}_graph_naive_t{full_threads}"), |b| {
                b.iter(|| {
                    with_threads(full_threads, || {
                        let fwd = exec.forward_naive(black_box(&data), &labels).unwrap();
                        black_box(exec.backward(&fwd).unwrap())
                    })
                })
            });
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_training_step
}
criterion_main!(benches);
