//! Offline shim for the subset of `serde` the bnff workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! an API-compatible stand-in: a [`Serialize`] trait that lowers values into
//! the [`value::Value`] JSON data model, re-exported derive macros, and a
//! no-op `Deserialize` derive (nothing in the workspace deserializes yet).
//!
//! The design intentionally deviates from real serde's visitor architecture:
//! the workspace only ever serializes *to JSON*, so `Serialize` produces a
//! `Value` tree directly and `serde_json` pretty-prints it. Swapping back to
//! the real crates is a `[workspace.dependencies]` edit in the root manifest.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use value::Value;

/// Types that can be lowered into the JSON [`Value`] data model.
///
/// The same-named derive macro implements this for structs and enums using
/// serde's externally-tagged conventions (unit variants as strings, newtype
/// variants as single-key objects, etc.).
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_value(&self) -> Value;
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);
impl_serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // Round-trip through the f32's own shortest decimal form so JSON
        // shows e.g. 0.00001 rather than the 17-digit f64 expansion of the
        // nearest-f32 bit pattern (what real serde_json emits for f32).
        Value::Float(self.to_string().parse::<f64>().unwrap_or(f64::from(*self)))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Map keys must render as JSON strings.
pub trait SerializeKey {
    /// The JSON object key for this value.
    fn to_key(&self) -> String;
}

impl SerializeKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
}

impl SerializeKey for &str {
    fn to_key(&self) -> String {
        (*self).to_string()
    }
}

macro_rules! impl_serialize_key_int {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
        }
    )*};
}

impl_serialize_key_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: SerializeKey + Ord, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort on the original key, not its string form, so integer keys
        // come out in numeric order — matching the BTreeMap impl below.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(entries.into_iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: SerializeKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::String("x".to_string()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }

    #[test]
    fn hashmap_keys_are_sorted() {
        let mut m = HashMap::new();
        m.insert(2usize, "b");
        m.insert(1usize, "a");
        match m.to_value() {
            Value::Object(entries) => {
                assert_eq!(entries[0].0, "1");
                assert_eq!(entries[1].0, "2");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
