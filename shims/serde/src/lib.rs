//! Offline shim for the subset of `serde` the bnff workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! an API-compatible stand-in: a [`Serialize`] trait that lowers values into
//! the [`value::Value`] JSON data model, a [`Deserialize`] trait that lifts
//! values back out of it (the checkpoint subsystem round-trips models
//! through JSON), and re-exported derive macros for both.
//!
//! The design intentionally deviates from real serde's visitor architecture:
//! the workspace only ever (de)serializes *JSON*, so `Serialize` produces a
//! `Value` tree directly, `Deserialize` consumes one, and `serde_json`
//! prints/parses the tree. Swapping back to the real crates is a
//! `[workspace.dependencies]` edit in the root manifest.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use value::Value;

/// Types that can be lowered into the JSON [`Value`] data model.
///
/// The same-named derive macro implements this for structs and enums using
/// serde's externally-tagged conventions (unit variants as strings, newtype
/// variants as single-key objects, etc.).
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_value(&self) -> Value;
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);
impl_serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // Round-trip through the f32's own shortest decimal form so JSON
        // shows e.g. 0.00001 rather than the 17-digit f64 expansion of the
        // nearest-f32 bit pattern (what real serde_json emits for f32).
        Value::Float(self.to_string().parse::<f64>().unwrap_or(f64::from(*self)))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Map keys must render as JSON strings.
pub trait SerializeKey {
    /// The JSON object key for this value.
    fn to_key(&self) -> String;
}

impl SerializeKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
}

impl SerializeKey for &str {
    fn to_key(&self) -> String {
        (*self).to_string()
    }
}

macro_rules! impl_serialize_key_int {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
        }
    )*};
}

impl_serialize_key_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: SerializeKey + Ord, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort on the original key, not its string form, so integer keys
        // come out in numeric order — matching the BTreeMap impl below.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(entries.into_iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: SerializeKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// Error produced when a [`Value`] tree cannot be lifted into a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError(message.into())
    }

    /// An "expected X, got Y" mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {got}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be lifted back out of the JSON [`Value`] data model.
///
/// The same-named derive macro implements this for structs and enums using
/// the exact conventions the [`Serialize`] derive emits, so any derived type
/// round-trips through [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value tree.
    ///
    /// # Errors
    /// Returns [`DeError`] when the value's shape does not match the type.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!("{i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new(format!("{u} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // The serializer prints non-finite floats as `null`; lifting
            // that back as NaN would silently corrupt values (a +inf weight
            // becoming NaN), so refuse instead of guessing.
            Value::Null => Err(DeError::new(
                "null where a number was expected (non-finite floats do not round-trip)",
            )),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        // The serializer emits the f32's shortest round-trip decimal form;
        // parsing it as f64 and narrowing recovers the original bit pattern
        // for every finite value (shortest f32 decimals are never close
        // enough to an f32 rounding boundary for the double rounding through
        // f64 to land differently).
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($($name:ident . $idx:tt),+ ; $arity:literal))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Array(items) if items.len() == $arity => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected(
                        concat!("array of length ", stringify!($arity)),
                        other,
                    )),
                }
            }
        }
    )*};
}

impl_deserialize_tuple! {
    (A.0, B.1 ; 2)
    (A.0, B.1, C.2 ; 3)
    (A.0, B.1, C.2, D.3 ; 4)
}

/// Map keys parsed back from their JSON object-key string form.
pub trait DeserializeKey: Sized {
    /// Parses the key from its JSON string form.
    ///
    /// # Errors
    /// Returns [`DeError`] when the string is not a valid key.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl DeserializeKey for String {
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_deserialize_key_int {
    ($($t:ty),*) => {$(
        impl DeserializeKey for $t {
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse::<$t>().map_err(|_| {
                    DeError::new(format!("invalid {} map key: {key:?}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_deserialize_key_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: DeserializeKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<K: DeserializeKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::String("x".to_string()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }

    #[test]
    fn hashmap_keys_are_sorted() {
        let mut m = HashMap::new();
        m.insert(2usize, "b");
        m.insert(1usize, "a");
        match m.to_value() {
            Value::Object(entries) => {
                assert_eq!(entries[0].0, "1");
                assert_eq!(entries[1].0, "2");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
