//! The JSON value tree that [`crate::Serialize`] lowers into, plus its
//! compact and pretty printers.

use std::fmt;

/// A JSON value. Object entries keep insertion order so struct fields print
/// in declaration order, like real `serde_json` does.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number. Non-finite values print as `null`.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_repr(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string();
    }
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

/// The shared `Null` constant the derive-generated deserializers substitute
/// for absent object fields (so `Option` fields read as `None`).
pub const NULL: Value = Value::Null;

/// Looks up a field of an object's entry list by key.
pub fn field<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl Value {
    /// The entry list if the value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The item list if the value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The field of an object value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|entries| field(entries, key))
    }

    /// Renders the value as compact single-line JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Renders the value as 2-space-indented pretty JSON.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => out.push_str(&float_repr(*f)),
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Value::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(indent + 1));
                    escape_into(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip_shapes() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(v.to_json(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::String("a\"b\n".into());
        assert_eq!(v.to_json(), r#""a\"b\n""#);
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Value::Float(2.0).to_json(), "2.0");
        assert_eq!(Value::Float(2.5).to_json(), "2.5");
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
    }
}
