//! Offline shim for the subset of `proptest` the bnff workspace uses: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, `prop::collection::vec`, and the [`proptest!`] /
//! [`prop_assert!`] macros.
//!
//! Unlike real proptest there is **no shrinking** and no persisted failure
//! seeds: cases are generated from a deterministic per-test seed, so a
//! failure reproduces by rerunning the test. The case count defaults to 32
//! (keeping `cargo test -q` fast) and honours the `PROPTEST_CASES`
//! environment variable like the real crate.

use std::fmt;
use std::ops::Range;

/// How many cases [`proptest!`] runs per test; reads `PROPTEST_CASES`.
pub fn cases_from_env() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(32)
}

/// Error type produced by `prop_assert!` failures inside a test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failed-case error with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator driving value production (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator from a test name, deterministically.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty usize strategy range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// A generator of values of one type; the shim's take on proptest's trait.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds produced values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.start, self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 strategy range");
        // Scale in f64 and convert last; converting the unit sample to f32
        // first can round to 1.0 and yield `end` from a half-open range.
        let v = (f64::from(self.start)
            + rng.next_f64() * (f64::from(self.end) - f64::from(self.start)))
            as f32;
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// The `prop::` namespace (`prop::collection::vec` and friends).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Length specification accepted by [`vec()`](fn@vec).
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange { lo: r.start, hi: r.end - 1 }
            }
        }

        /// Strategy producing `Vec`s of values from an element strategy.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.lo == self.size.hi {
                    self.size.lo
                } else {
                    super::super::TestRng::usize_in(rng, self.size.lo, self.size.hi + 1)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, len)` — a fixed- or ranged-length
        /// vector strategy.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }
}

/// The glob-import surface mirrored from real proptest.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, Strategy, TestCaseError};
}

/// Declares property tests: `proptest! { #[test] fn name(x in strat) {..} }`.
///
/// Each declared test evaluates its strategies once, then runs
/// [`cases_from_env`] generated cases; a `prop_assert!` failure panics with
/// the case number.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases_from_env();
                $(let $arg = $strat;)+
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..cases {
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body, failing the case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        let strat = (1usize..5, -1.0f32..1.0);
        for _ in 0..100 {
            let (n, f) = strat.generate(&mut rng);
            assert!((1..5).contains(&n));
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_flat_map_compose() {
        let mut rng = crate::TestRng::from_name("compose");
        let strat = (1usize..4)
            .prop_flat_map(|n| prop::collection::vec(0.0f32..1.0, n).prop_map(move |v| (n, v)));
        for _ in 0..50 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(a in 0usize..10, b in 0usize..10) {
            prop_assert!(a + b < 20);
        }
    }
}
