//! Offline shim for the subset of `serde_json` the bnff workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`] (a full JSON parser),
//! the [`json!`] macro, and the [`Value`] tree (re-exported from the serde
//! shim).

pub use serde::value::Value;

use std::fmt;

/// Serialization error. The shim's tree-based serializer is infallible, but
/// the real `serde_json` API returns `Result`, so call sites use `?`.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(err: serde::DeError) -> Self {
        Error(err.to_string())
    }
}

/// Lowers any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes a value as compact single-line JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Serializes a value as 2-space-indented pretty JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Lifts a [`Value`] tree into any deserializable type.
///
/// # Errors
/// Returns an error when the value's shape does not match the type.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Parses a JSON document into any deserializable type.
///
/// # Errors
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    from_value(&parse(input)?)
}

/// Parses a JSON document into a [`Value`] tree.
///
/// # Errors
/// Returns an error on malformed JSON or trailing non-whitespace input.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", parser.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected {:?} at byte {}", char::from(byte), self.pos)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape =
                        self.peek().ok_or_else(|| Error::new("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            // Combine UTF-16 surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate".to_string()));
                                }
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((u32::from(unit) - 0xD800) << 10)
                                    + (u32::from(low) - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(u32::from(unit))
                            };
                            out.push(
                                c.ok_or_else(|| Error::new("invalid \\u escape".to_string()))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape '\\{}'",
                                char::from(other)
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Bulk-copy the run of plain bytes up to the next quote
                    // or escape, validating it as UTF-8 exactly once.
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8 in string".to_string()))?;
                    out.push_str(chunk);
                }
                None => return Err(Error::new("unterminated string".to_string())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape".to_string()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape".to_string()))?;
        let unit = u16::from_str_radix(hex, 16)
            .map_err(|_| Error::new(format!("invalid \\u escape '{hex}'")))?;
        self.pos += 4;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number".to_string()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

/// Builds a [`Value`] from object/array/expression syntax.
///
/// Supports the flat forms the workspace uses: `json!({ "k": expr, ... })`,
/// `json!([expr, ...])` and `json!(expr)`. Values are anything implementing
/// the shim's `Serialize` (including `Value` itself, so calls compose).
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$value)) ),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$value) ),* ])
    };
    (null) => { $crate::Value::Null };
    ($value:expr) => { $crate::to_value(&$value) };
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Serialize)]
    struct Row {
        name: String,
        score: f64,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Nested {
        id: usize,
        tag: Option<String>,
        values: Vec<f32>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Unit,
        Newtype(u32),
        Pair(i32, bool),
        Named { x: f64, label: String },
    }

    #[test]
    fn parser_handles_all_value_shapes() {
        let v = super::parse(
            r#" { "a": [1, -2, 3.5, 1e3], "b": null, "c": true, "s": "q\"\u0041\n" } "#,
        )
        .unwrap();
        assert_eq!(v.get("b"), Some(&super::Value::Null));
        assert_eq!(v.get("c"), Some(&super::Value::Bool(true)));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0], super::Value::UInt(1));
        assert_eq!(arr[1], super::Value::Int(-2));
        assert_eq!(arr[2], super::Value::Float(3.5));
        assert_eq!(arr[3], super::Value::Float(1e3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("q\"A\n"));
        // Malformed documents are rejected, not mis-parsed.
        assert!(super::parse("{").is_err());
        assert!(super::parse("[1,]").is_err());
        assert!(super::parse("1 2").is_err());
        assert!(super::parse(r#"{"k" 1}"#).is_err());
    }

    #[test]
    fn derived_struct_round_trips() {
        let nested = Nested { id: 7, tag: None, values: vec![0.1, -2.5e-8, 3.4e38, 0.0, -1.5e-42] };
        let json = super::to_string(&nested).unwrap();
        let back: Nested = super::from_str(&json).unwrap();
        assert_eq!(back, nested);
        // Bit-exactness of the f32 payload specifically.
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.values), bits(&nested.values));
    }

    #[test]
    fn derived_enum_round_trips_every_variant_shape() {
        for kind in [
            Kind::Unit,
            Kind::Newtype(42),
            Kind::Pair(-3, true),
            Kind::Named { x: 2.75, label: "hi".into() },
        ] {
            let json = super::to_string(&kind).unwrap();
            let back: Kind = super::from_str(&json).unwrap();
            assert_eq!(back, kind);
        }
        // Unknown variants fail instead of guessing.
        assert!(super::from_str::<Kind>("\"Bogus\"").is_err());
        assert!(super::from_str::<Kind>(r#"{"Bogus": 1}"#).is_err());
    }

    #[test]
    fn non_finite_floats_fail_loudly_instead_of_corrupting() {
        // The serializer prints Inf/NaN as null; lifting that back must be
        // an error, not a silent NaN.
        let json = super::to_string(&vec![1.0f32, f32::INFINITY]).unwrap();
        assert_eq!(json, "[1.0,null]");
        assert!(super::from_str::<Vec<f32>>(&json).is_err());
        assert!(super::from_str::<Vec<f64>>("[null]").is_err());
        // Option still treats null as None.
        assert_eq!(
            super::from_str::<Vec<Option<f32>>>("[null,2.5]").unwrap(),
            vec![None, Some(2.5)]
        );
    }

    #[test]
    fn maps_round_trip_with_integer_keys() {
        use std::collections::HashMap;
        let mut m: HashMap<usize, Vec<f32>> = HashMap::new();
        m.insert(10, vec![1.0, 2.0]);
        m.insert(2, vec![-0.5]);
        let json = super::to_string(&m).unwrap();
        let back: HashMap<usize, Vec<f32>> = super::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn derived_struct_serializes_in_field_order() {
        let row = Row { name: "a\"b".into(), score: 1.5 };
        assert_eq!(super::to_string(&row).unwrap(), r#"{"name":"a\"b","score":1.5}"#);
    }

    #[test]
    fn json_macro_builds_objects() {
        let rows = vec![Row { name: "x".into(), score: 2.0 }];
        let v = json!({ "batch": 4usize, "rows": rows });
        let s = super::to_string(&v).unwrap();
        assert_eq!(s, r#"{"batch":4,"rows":[{"name":"x","score":2.0}]}"#);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({ "a": 1u32 });
        assert_eq!(super::to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }
}
