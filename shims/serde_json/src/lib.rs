//! Offline shim for the subset of `serde_json` the bnff workspace uses:
//! [`to_string`], [`to_string_pretty`], the [`json!`] macro, and the
//! [`Value`] tree (re-exported from the serde shim).

pub use serde::value::Value;

use std::fmt;

/// Serialization error. The shim's tree-based serializer is infallible, but
/// the real `serde_json` API returns `Result`, so call sites use `?`.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes a value as compact single-line JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Serializes a value as 2-space-indented pretty JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Builds a [`Value`] from object/array/expression syntax.
///
/// Supports the flat forms the workspace uses: `json!({ "k": expr, ... })`,
/// `json!([expr, ...])` and `json!(expr)`. Values are anything implementing
/// the shim's `Serialize` (including `Value` itself, so calls compose).
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$value)) ),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$value) ),* ])
    };
    (null) => { $crate::Value::Null };
    ($value:expr) => { $crate::to_value(&$value) };
}

#[cfg(test)]
mod tests {
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        name: String,
        score: f64,
    }

    #[test]
    fn derived_struct_serializes_in_field_order() {
        let row = Row { name: "a\"b".into(), score: 1.5 };
        assert_eq!(super::to_string(&row).unwrap(), r#"{"name":"a\"b","score":1.5}"#);
    }

    #[test]
    fn json_macro_builds_objects() {
        let rows = vec![Row { name: "x".into(), score: 2.0 }];
        let v = json!({ "batch": 4usize, "rows": rows });
        let s = super::to_string(&v).unwrap();
        assert_eq!(s, r#"{"batch":4,"rows":[{"name":"x","score":2.0}]}"#);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({ "a": 1u32 });
        assert_eq!(super::to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }
}
