//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde shim. Parses the item token stream directly (no `syn` /
//! `quote` available offline) and emits an `impl serde::Serialize` that
//! lowers the type into the shim's `Value` tree using serde's
//! externally-tagged enum conventions.
//!
//! Supported shapes — everything the bnff workspace derives on:
//! structs with named fields, tuple structs (newtype and wider), unit
//! structs, and enums whose variants are unit, tuple, or struct-like.
//! Generic types and `#[serde(...)]` attributes are intentionally not
//! supported; the macro panics with a clear message if it meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let parsed = parse_item(&tokens);
    let body = match &parsed.shape {
        Shape::NamedStruct(fields) => named_fields_value(fields, "self.", "&"),
        Shape::TupleStruct(arity) => tuple_value_self(*arity),
        Shape::UnitStruct => "serde::value::Value::Null".to_string(),
        Shape::Enum(variants) => enum_match(&parsed.name, variants),
    };
    let out = format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::value::Value {{\n\
                 {body}\n\
             }}\n\
         }}",
        name = parsed.name,
        body = body,
    );
    out.parse().expect("serde_derive: generated impl failed to parse")
}

/// Derives the shim's `serde::Deserialize` for a non-generic struct or
/// enum, inverting the exact `Value` conventions the `Serialize` derive
/// emits so derived types round-trip through the JSON data model.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let parsed = parse_item(&tokens);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::NamedStruct(fields) => {
            format!(
                "let obj = value.as_object().ok_or_else(|| \
                     serde::DeError::expected(\"object for {name}\", value))?;\n\
                 Ok({name} {{ {inits} }})",
                inits = named_field_inits(fields),
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(value)?))")
        }
        Shape::TupleStruct(arity) => {
            format!(
                "let items = value.as_array().ok_or_else(|| \
                     serde::DeError::expected(\"array for {name}\", value))?;\n\
                 if items.len() != {arity} {{\n\
                     return Err(serde::DeError::expected(\"array of {arity} for {name}\", value));\n\
                 }}\n\
                 Ok({name}({inits}))",
                inits = (0..*arity)
                    .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                    .collect::<Vec<_>>()
                    .join(", "),
            )
        }
        Shape::UnitStruct => format!("let _ = value; Ok({name})"),
        Shape::Enum(variants) => enum_from_value(name, variants),
    };
    let out = format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(\n\
                 value: &serde::value::Value,\n\
             ) -> ::std::result::Result<{name}, serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}",
    );
    out.parse().expect("serde_derive: generated Deserialize impl failed to parse")
}

/// `field: Deserialize::from_value(obj["field"] or Null)?, ...` initializers
/// for a named-field struct or struct-like enum variant.
fn named_field_inits(fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: serde::Deserialize::from_value(\
                     serde::value::field(obj, \"{f}\").unwrap_or(&serde::value::NULL))?"
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// The externally-tagged enum deserializer: unit variants arrive as strings,
/// data-carrying variants as single-entry `{ "Variant": payload }` objects.
fn enum_from_value(type_name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                unit_arms.push_str(&format!("\"{vname}\" => return Ok({type_name}::{vname}),\n"));
            }
            VariantShape::Tuple(1) => {
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => return Ok({type_name}::{vname}(\
                         serde::Deserialize::from_value(payload)?)),\n"
                ));
            }
            VariantShape::Tuple(arity) => {
                let inits = (0..*arity)
                    .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                    .collect::<Vec<_>>()
                    .join(", ");
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                         let items = payload.as_array().ok_or_else(|| \
                             serde::DeError::expected(\"array for {type_name}::{vname}\", payload))?;\n\
                         if items.len() != {arity} {{\n\
                             return Err(serde::DeError::expected(\
                                 \"array of {arity} for {type_name}::{vname}\", payload));\n\
                         }}\n\
                         return Ok({type_name}::{vname}({inits}));\n\
                     }}\n"
                ));
            }
            VariantShape::Named(fields) => {
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                         let obj = payload.as_object().ok_or_else(|| \
                             serde::DeError::expected(\"object for {type_name}::{vname}\", payload))?;\n\
                         return Ok({type_name}::{vname} {{ {inits} }});\n\
                     }}\n",
                    inits = named_field_inits(fields),
                ));
            }
        }
    }
    format!(
        "if let Some(tag) = value.as_str() {{\n\
             match tag {{\n\
                 {unit_arms}\
                 _ => {{}}\n\
             }}\n\
         }}\n\
         if let Some(entries) = value.as_object() {{\n\
             if entries.len() == 1 {{\n\
                 let (tag, payload) = &entries[0];\n\
                 match tag.as_str() {{\n\
                     {tagged_arms}\
                     _ => {{}}\n\
                 }}\n\
             }}\n\
         }}\n\
         Err(serde::DeError::expected(\"variant of {type_name}\", value))"
    )
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_str(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Advances past any `#[...]` attributes (including doc comments).
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len()
        && is_punct(&tokens[i], '#')
        && matches!(&tokens[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Advances past `pub`, `pub(crate)`, `pub(in ...)`, etc.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && ident_str(&tokens[i]).as_deref() == Some("pub") {
        i += 1;
        if i < tokens.len()
            && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

fn parse_item(tokens: &[TokenTree]) -> Parsed {
    let mut i = skip_attrs(tokens, 0);
    i = skip_vis(tokens, i);
    let kind = ident_str(&tokens[i]).expect("serde_derive: expected `struct` or `enum`");
    i += 1;
    let name = ident_str(&tokens[i]).expect("serde_derive: expected type name");
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>());
                Parsed { name, shape: Shape::NamedStruct(fields) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(&g.stream().into_iter().collect::<Vec<_>>());
                Parsed { name, shape: Shape::TupleStruct(arity) }
            }
            _ => Parsed { name, shape: Shape::UnitStruct },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(&g.stream().into_iter().collect::<Vec<_>>());
                Parsed { name, shape: Shape::Enum(variants) }
            }
            _ => panic!("serde_derive shim: malformed enum `{name}`"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

/// Splits a field/variant list on top-level commas, treating `<...>` angle
/// brackets as nesting (groups are single tokens already).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    split_top_level(tokens)
        .iter()
        .map(|part| {
            let i = skip_vis(part, skip_attrs(part, 0));
            ident_str(&part[i]).expect("serde_derive: expected field name")
        })
        .collect()
}

fn tuple_arity(tokens: &[TokenTree]) -> usize {
    split_top_level(tokens).len()
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    split_top_level(tokens)
        .iter()
        .map(|part| {
            let i = skip_attrs(part, 0);
            let name = ident_str(&part[i]).expect("serde_derive: expected variant name");
            let shape = match part.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(tuple_arity(&g.stream().into_iter().collect::<Vec<_>>()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(
                        &g.stream().into_iter().collect::<Vec<_>>(),
                    ))
                }
                _ => VariantShape::Unit,
            };
            Variant { name, shape }
        })
        .collect()
}

/// `Value::Object(vec![("field", field_expr.to_value()), ...])` where each
/// field expression is `{prefix}{field}` (e.g. `self.x` or a binding `x`).
fn named_fields_value(fields: &[String], prefix: &str, borrow: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value({borrow}{prefix}{f}))",))
        .collect();
    format!("serde::value::Value::Object(vec![{}])", entries.join(", "))
}

fn tuple_value_self(arity: usize) -> String {
    if arity == 1 {
        "serde::Serialize::to_value(&self.0)".to_string()
    } else {
        let items: Vec<String> =
            (0..arity).map(|i| format!("serde::Serialize::to_value(&self.{i})")).collect();
        format!("serde::value::Value::Array(vec![{}])", items.join(", "))
    }
}

fn enum_match(type_name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.shape {
                VariantShape::Unit => format!(
                    "{type_name}::{vname} => serde::value::Value::String(\"{vname}\".to_string())",
                ),
                VariantShape::Tuple(1) => format!(
                    "{type_name}::{vname}(f0) => serde::value::Value::Object(vec![(\"{vname}\".to_string(), serde::Serialize::to_value(f0))])",
                ),
                VariantShape::Tuple(arity) => {
                    let bindings: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                    let items: Vec<String> = bindings
                        .iter()
                        .map(|b| format!("serde::Serialize::to_value({b})"))
                        .collect();
                    format!(
                        "{type_name}::{vname}({binds}) => serde::value::Value::Object(vec![(\"{vname}\".to_string(), serde::value::Value::Array(vec![{items}]))])",
                        binds = bindings.join(", "),
                        items = items.join(", "),
                    )
                }
                VariantShape::Named(fields) => {
                    let inner = named_fields_value(fields, "", "");
                    format!(
                        "{type_name}::{vname} {{ {binds} }} => serde::value::Value::Object(vec![(\"{vname}\".to_string(), {inner})])",
                        binds = fields.join(", "),
                    )
                }
            }
        })
        .collect();
    format!("match self {{ {} }}", arms.join(",\n"))
}
