//! Offline shim for the subset of `criterion` 0.5 the bnff benches use.
//!
//! It is a *working* micro-benchmark harness, not just compile stubs: each
//! `bench_function` warms up, then runs timed samples honouring
//! `sample_size` / `measurement_time` / `warm_up_time`, and prints the mean
//! wall-clock time per iteration. No statistics, plots, or baselines — for
//! those, flip the root manifest's `criterion` entry back to the registry
//! crate when network access is available.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` call sites keep working.
pub use std::hint::black_box;

/// The benchmark driver; holds the run configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, self.measurement_time, self.warm_up_time, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group of benchmarks sharing the driver's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(
            &full,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            self.criterion.warm_up_time,
            f,
        );
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies a parameterised benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Passed to the closure given to `bench_function`; `iter` does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mut f: F,
) {
    // Warm up and estimate the per-iteration cost.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < warm_up_time || warm_iters == 0 {
        f(&mut b);
        warm_iters += b.iters;
        per_iter = b.elapsed.max(Duration::from_nanos(1));
    }

    // Pick an iteration count so the samples roughly fill measurement_time.
    let budget_per_sample = measurement_time.as_nanos() / sample_size.max(1) as u128;
    let iters = (budget_per_sample / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut done: u64 = 0;
    for _ in 0..sample_size {
        b.iters = iters;
        f(&mut b);
        total += b.elapsed;
        done += iters;
    }
    let mean_ns = total.as_nanos() as f64 / done.max(1) as f64;
    println!("{name:<50} time: {}", fmt_ns(mean_ns));
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro in
/// both its simple and `name =` / `config =` / `targets =` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Expands to `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(3usize), &3usize, |b, n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
