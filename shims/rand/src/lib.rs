//! Offline shim for the subset of `rand` 0.8 the bnff workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over (inclusive) ranges, and
//! `distributions::{Distribution, Uniform}`.
//!
//! The generator is SplitMix64 — statistically fine for synthetic data and
//! weight init, deterministic per seed, and dependency-free. Not
//! cryptographic, and streams differ from the real `StdRng`.

pub mod distributions;
pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0..=1.0)`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding support; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo + (rng.next_u64() as u128 % span) as $t
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                // Scale in f64 and convert last: converting the unit sample
                // to f32 first can round it up to 1.0 and return `hi`,
                // violating the documented [lo, hi) contract.
                let v = (lo as f64 + rng.next_f64() * (hi as f64 - lo as f64)) as $t;
                if v < hi { v } else { hi.next_down().max(lo) }
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                (lo as f64 + rng.next_f64() * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            let f = rng.gen_range(0.0f64..1.0);
            if f < 0.25 {
                lo_seen = true;
            }
            if f > 0.75 {
                hi_seen = true;
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
