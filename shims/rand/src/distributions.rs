//! The `Distribution` trait and the `Uniform` distribution.

use crate::{RngCore, SampleUniform};

/// Types that generate values of `T` from a random source.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over `[lo, hi)` or `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: SampleUniform> Uniform<T> {
    /// Uniform over the half-open interval `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        assert!(lo < hi, "Uniform::new: empty range");
        Uniform { lo, hi, inclusive: false }
    }

    /// Uniform over the closed interval `[lo, hi]`.
    pub fn new_inclusive(lo: T, hi: T) -> Self {
        assert!(lo <= hi, "Uniform::new_inclusive: empty range");
        Uniform { lo, hi, inclusive: true }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore>(&self, rng: &mut R) -> T {
        if self.inclusive {
            T::sample_inclusive(self.lo, self.hi, rng)
        } else {
            T::sample_half_open(self.lo, self.hi, rng)
        }
    }
}
