//! Concrete generators. Only [`StdRng`] is provided.

use crate::{RngCore, SeedableRng};

/// Deterministic 64-bit generator (SplitMix64). API-compatible stand-in for
/// `rand::rngs::StdRng`; the stream differs from the real implementation.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Scramble the seed before using it as state. Callers derive seeds
        // arithmetically (e.g. `step * 0x9E37_79B9_7F4A_7C15` in
        // bnff-train's dataset), and that constant is exactly this
        // generator's state increment — raw seeds would make consecutive
        // steps' streams shifted copies of each other.
        let mut z = seed ^ 0x9E37_79B9_7F4A_7C15;
        z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        StdRng { state: z ^ (z >> 33) }
    }
}
