//! # bnff — Restructuring Batch Normalization to Accelerate CNN Training
//!
//! This is the facade crate of the `bnff` workspace, a Rust reproduction of
//! the MLSys 2019 paper *"Restructuring Batch Normalization to Accelerate CNN
//! Training"* (Jung et al.). It re-exports the public API of every workspace
//! crate so downstream users and the bundled examples can depend on a single
//! crate.
//!
//! The headline idea of the paper is **BN Fission-n-Fusion (BNFF)**: split a
//! training-time Batch Normalization layer into a statistics sub-layer and a
//! normalization sub-layer, then fuse the former into the preceding
//! convolution and the latter into the following ReLU + convolution, removing
//! whole-feature-map main-memory sweeps.
//!
//! ## Quickstart
//!
//! ```rust
//! use bnff::core::{BnffOptimizer, FusionLevel};
//! use bnff::memsim::MachineProfile;
//! use bnff::models::densenet121;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build DenseNet-121 at the paper's mini-batch size.
//! let graph = densenet121(120)?;
//!
//! // Apply the full BN Fission-n-Fusion pipeline.
//! let optimizer = BnffOptimizer::new(FusionLevel::Bnff);
//! let restructured = optimizer.apply(&graph)?;
//!
//! // Estimate the training-iteration speedup on the paper's Skylake system.
//! let machine = MachineProfile::skylake_xeon_2s();
//! let report = optimizer.compare(&graph, &restructured, &machine)?;
//! assert!(report.speedup() > 1.0);
//! # Ok(())
//! # }
//! ```
//!
//! See the crate-level docs of each re-exported module for the details:
//! [`tensor`], [`graph`], [`kernels`], [`memsim`], [`models`], [`train`],
//! [`serve`] (frozen-graph inference + dynamic batching),
//! [`artifact`] (the single-file deployable model format),
//! [`core`] and [`parallel`] (the thread pool behind the kernels; set
//! `BNFF_THREADS` to bound it). `ARCHITECTURE.md` at the workspace root
//! maps every crate to the paper sections it reproduces.

pub use bnff_artifact as artifact;
pub use bnff_core as core;
pub use bnff_graph as graph;
pub use bnff_kernels as kernels;
pub use bnff_memsim as memsim;
pub use bnff_models as models;
pub use bnff_parallel as parallel;
pub use bnff_serve as serve;
pub use bnff_tensor as tensor;
pub use bnff_train as train;

/// The version of the bnff workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
