//! Reproduce the paper's Figure 3 view interactively: print the
//! bandwidth-utilization timeline of one DenseNet-121 training iteration,
//! before and after BN Fission-n-Fusion, as an ASCII strip chart.
//!
//! Run with `cargo run --release --example memory_timeline -- [batch]`.

use bnff::core::{BnffOptimizer, FusionLevel};
use bnff::memsim::timeline::{bandwidth_series, simulate_timeline};
use bnff::memsim::MachineProfile;
use bnff::models::densenet121;

fn strip(series: &[f64]) -> String {
    const LEVELS: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    series
        .iter()
        .map(|u| LEVELS[((u * (LEVELS.len() - 1) as f64).round() as usize).min(LEVELS.len() - 1)])
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(120);
    let machine = MachineProfile::skylake_xeon_2s();
    let baseline = densenet121(batch)?;
    let restructured = BnffOptimizer::new(FusionLevel::Bnff).apply(&baseline)?;

    println!("DenseNet-121 @ batch {batch} on {}", machine.name);
    println!("(each character is one time bucket; darker = closer to peak bandwidth)\n");
    for (name, graph) in [("baseline", &baseline), ("BNFF", &restructured)] {
        let events = simulate_timeline(graph, &machine)?;
        let total: f64 = events.iter().map(|e| e.duration).sum();
        let series = bandwidth_series(&events, 100);
        println!("{name:9} ({:6.1} ms/iteration): |{}|", total * 1e3, strip(&series));
    }
    println!("\nThe BNFF strip is both shorter (fewer, fused layers) and less saturated:");
    println!("the dedicated BN/ReLU sweeps that pinned the memory bus are gone.");
    Ok(())
}
