//! Quickstart: build DenseNet-121 at the paper's mini-batch size, apply BN
//! Fission-n-Fusion, and estimate the training-iteration speedup on the
//! paper's 2-socket Skylake system.
//!
//! Run with `cargo run --release --example quickstart`.

use bnff::core::{BnffOptimizer, FusionLevel};
use bnff::graph::analysis;
use bnff::memsim::MachineProfile;
use bnff::models::densenet121;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = 120;
    let graph = densenet121(batch)?;
    println!(
        "DenseNet-121 @ batch {batch}: {} layers, {:.2} M parameters",
        graph.node_count(),
        graph.parameter_count() as f64 / 1e6
    );

    let machine = MachineProfile::skylake_xeon_2s();
    for level in [FusionLevel::Rcf, FusionLevel::RcfMvf, FusionLevel::Bnff, FusionLevel::BnffIcf] {
        let optimizer = BnffOptimizer::new(level);
        let restructured = optimizer.apply(&graph)?;
        let report = optimizer.compare(&graph, &restructured, &machine)?;
        let sweeps_before = analysis::activation_sweep_count(&graph)?;
        let sweeps_after = analysis::activation_sweep_count(&restructured)?;
        println!(
            "{:9} -> {:4} layers, {:4} -> {:4} feature-map sweeps, speedup {:.2}x ({:.1}% faster, {:.1}% less DRAM traffic)",
            level.label(),
            restructured.node_count(),
            sweeps_before,
            sweeps_after,
            report.speedup(),
            report.improvement() * 100.0,
            report.traffic_reduction() * 100.0
        );
    }
    Ok(())
}
