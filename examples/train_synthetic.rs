//! Train a CIFAR-scale DenseNet on a synthetic classification task with the
//! baseline graph and with the BNFF-restructured graph, showing that both
//! reach the same loss scale — the numerical-equivalence claim of the paper
//! exercised end to end.
//!
//! Run with `cargo run --release --example train_synthetic`.

use bnff::core::{BnffOptimizer, FusionLevel};
use bnff::models::densenet_cifar;
use bnff::train::data::SyntheticDataset;
use bnff::train::{TrainConfig, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = 16;
    let classes = 5;
    let baseline_graph = densenet_cifar(batch, 8, 2, classes)?;
    let bnff_graph = BnffOptimizer::new(FusionLevel::Bnff).apply(&baseline_graph)?;
    let dataset = SyntheticDataset::new(classes, 3, 32, 0.05, 1234)?;
    let config = TrainConfig {
        batch_size: batch,
        steps: 20,
        learning_rate: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 7,
    };

    for (name, graph) in [("baseline", baseline_graph), ("BNFF", bnff_graph)] {
        let mut trainer = Trainer::new(graph, dataset.clone(), config.clone())?;
        println!("--- training the {name} graph ---");
        for step in 0..config.steps {
            let metrics = trainer.step(step)?;
            if step % 5 == 0 || step + 1 == config.steps {
                println!(
                    "step {:3}: loss {:.4}, accuracy {:.1}%",
                    metrics.step,
                    metrics.loss,
                    metrics.accuracy * 100.0
                );
            }
        }
        let eval = trainer.evaluate(99_991)?;
        println!(
            "{name}: held-out loss {:.4}, accuracy {:.1}%\n",
            eval.loss,
            eval.accuracy * 100.0
        );
    }
    Ok(())
}
