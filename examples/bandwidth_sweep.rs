//! Extend the paper's Figure 8: sweep the machine's memory bandwidth from
//! well below to well above the Skylake system's 230.4 GB/s and report the
//! BNFF improvement at every point. The gain grows as the FLOP/B ratio of
//! the machine grows — the paper's argument for why BN restructuring will
//! matter even more on future accelerators.
//!
//! Run with `cargo run --release --example bandwidth_sweep -- [batch]`.

use bnff::core::{BnffOptimizer, FusionLevel};
use bnff::memsim::{simulate_iteration, MachineProfile};
use bnff::models::densenet121;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(120);
    let graph = densenet121(batch)?;
    let optimizer = BnffOptimizer::new(FusionLevel::Bnff);
    let restructured = optimizer.apply(&graph)?;

    println!("DenseNet-121 @ batch {batch}: BNFF gain vs peak memory bandwidth\n");
    println!(
        "{:>10}  {:>9}  {:>12}  {:>12}  {:>9}",
        "BW (GB/s)", "FLOP/B", "baseline", "BNFF", "gain"
    );
    for gbs in [57.6, 115.2, 230.4, 460.8, 921.6] {
        let machine = MachineProfile::skylake_xeon_2s().with_bandwidth(gbs * 1e9);
        let base = simulate_iteration(&graph, &machine)?;
        let bnff = simulate_iteration(&restructured, &machine)?;
        println!(
            "{:>10.1}  {:>9.1}  {:>9.1} ms  {:>9.1} ms  {:>8.1}%",
            gbs,
            machine.flop_per_byte(),
            base.total_seconds() * 1e3,
            bnff.total_seconds() * 1e3,
            bnff.improvement_over(&base) * 100.0
        );
    }
    println!("\nLower bandwidth (higher FLOP/B) -> larger BNFF benefit, as in Figure 8.");
    Ok(())
}
