//! Serving saturation harness: trains a small zoo model, freezes it, then
//! drives the sharded engine with the load generator to produce the two
//! numbers the CI scaling gate checks plus a full latency-vs-throughput
//! curve.
//!
//! 1. **Scaling** — closed-loop peak throughput at one worker on one
//!    kernel thread (`serve_rps_1w`, the single-core unit of work) and at
//!    four workers on four kernel threads, one each (`serve_rps_4w`). The
//!    ratio `serve_scaling_4w_over_1w` is the cores-scaling factor CI
//!    gates at ≥ 2.0 on its 4-vCPU runners.
//! 2. **Saturation curve** — an open-loop sweep over offered rates with
//!    the 4-worker engine, emitting p50/p99/p999, achieved rps and shed
//!    counts per rate (`serve_curve_w4_r{rate}_*`).
//! 3. **SLA point** — p99 at the committed offered rate
//!    (`BNFF_SERVE_SLA_RPS`, default 200 rps) as `serve_p99_ms_at_sla`,
//!    gated ≤ 250 ms in CI.
//!
//! Run with `cargo run --release --example serve_load [-- REPORT.json]`.
//! Environment knobs: `BNFF_SERVE_TRAIN_STEPS` (default 5),
//! `BNFF_SERVE_LOAD_REQUESTS` (closed-loop total, default 256),
//! `BNFF_SERVE_SWEEP_REQUESTS` (per open-loop rate, default 192),
//! `BNFF_SERVE_LOAD_RATES` (comma-separated rps list, default
//! `150,300,600,1200`), `BNFF_SERVE_SLA_RPS` (default 200).

use bnff::core::{BnffOptimizer, FusionLevel};
use bnff::models::densenet_cifar;
use bnff::serve::loadgen::{closed_loop, sweep, LoadPoint};
use bnff::serve::{BatchingConfig, FrozenModel, ServeEngine};
use bnff::tensor::{Shape, Tensor};
use bnff::train::data::SyntheticDataset;
use bnff::train::{TrainConfig, Trainer};
use bnff_bench::{print_table, BenchReport};
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_rates(name: &str, default: &[f64]) -> Vec<f64> {
    std::env::var(name)
        .ok()
        .map(|v| v.split(',').filter_map(|r| r.trim().parse().ok()).collect())
        .filter(|v: &Vec<f64>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// Formats a latency already expressed in milliseconds (the bench crate's
/// `ms` helper expects seconds).
fn fmt_ms(value: f64) -> String {
    format!("{value:.1} ms")
}

/// Engine config for a given (workers, kernel_threads) pairing; everything
/// else is held fixed so the scaling ratio isolates the concurrency axis.
fn config(workers: usize, kernel_threads: usize) -> BatchingConfig {
    BatchingConfig {
        max_batch: 8,
        max_wait: Duration::from_millis(2),
        workers,
        executor_cache: 4,
        queue_depth: 64,
        kernel_threads,
        ..BatchingConfig::default()
    }
}

/// Peak sustainable throughput: a closed loop with enough outstanding
/// requests that the engine never idles.
fn saturate(
    model: &FrozenModel,
    workers: usize,
    kernel_threads: usize,
    total: usize,
    samples: &[Tensor],
) -> Result<LoadPoint, Box<dyn std::error::Error>> {
    let engine = ServeEngine::builder()
        .model(model.clone())
        .config(config(workers, kernel_threads))
        .start()?;
    let concurrency = (workers * 8 * 2).min(engine.queue_capacity());
    let point = closed_loop(&engine, samples, total, concurrency)?;
    engine.shutdown();
    Ok(point)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Record which SIMD path the kernels execute, so saved load-harness
    // numbers are attributable to a dispatch decision.
    println!("simd dispatch: {}", bnff::kernels::dispatch::active_isa());
    let batch = 8;
    let classes = 5;
    let steps = env_usize("BNFF_SERVE_TRAIN_STEPS", 5);
    let load_requests = env_usize("BNFF_SERVE_LOAD_REQUESTS", 256);
    let sweep_requests = env_usize("BNFF_SERVE_SWEEP_REQUESTS", 192);
    let rates = env_rates("BNFF_SERVE_LOAD_RATES", &[150.0, 300.0, 600.0, 1200.0]);
    let sla_rps = env_usize("BNFF_SERVE_SLA_RPS", 200) as f64;

    // --- 1. Train briefly and freeze (BN folds into the weights).
    let baseline = densenet_cifar(batch, 8, 2, classes)?;
    let graph = BnffOptimizer::new(FusionLevel::Bnff).apply(&baseline)?;
    let dataset = SyntheticDataset::new(classes, 3, 32, 0.05, 1234)?;
    let train_config = TrainConfig {
        batch_size: batch,
        steps,
        learning_rate: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 7,
    };
    let mut trainer = Trainer::new(graph, dataset.clone(), train_config.clone())?;
    for step in 0..train_config.steps {
        trainer.step(step)?;
    }
    let model = ServeEngine::builder().executor(trainer.executor()).build_model()?;
    drop(trainer);

    // --- 2. A pool of distinct single-sample requests.
    let sample_shape = model.sample_shape()?;
    let mut dims = vec![1usize];
    dims.extend_from_slice(sample_shape.dims());
    let volume = sample_shape.volume();
    let samples: Vec<Tensor> = (0..32)
        .map(|i| {
            let (data, _labels) = dataset.batch(1, 90_000 + i as u64)?;
            Tensor::from_vec(Shape::new(dims.clone()), data.as_slice()[..volume].to_vec())
                .map_err(Into::into)
        })
        .collect::<Result<_, Box<dyn std::error::Error>>>()?;

    // --- 3. Scaling: 1 worker × 1 kernel thread vs 4 workers × 4 kernel
    // threads (one each). On a 4-core machine the second engine has 4×
    // the compute budget; the gate checks it converts ≥ 2× of that into
    // throughput.
    println!("--- closed-loop saturation ---");
    let one = saturate(&model, 1, 1, load_requests, &samples)?;
    let four = saturate(&model, 4, 4, load_requests, &samples)?;
    let scaling = four.achieved_rps / one.achieved_rps.max(f64::MIN_POSITIVE);
    print_table(
        "peak sustainable throughput (closed loop)",
        &["engine", "rps", "p50", "p99", "mean batch"],
        &[
            vec![
                "1 worker / 1 thread".into(),
                format!("{:.0}", one.achieved_rps),
                fmt_ms(one.p50_ms),
                fmt_ms(one.p99_ms),
                format!("{:.2}", one.mean_batch_size),
            ],
            vec![
                "4 workers / 4 threads".into(),
                format!("{:.0}", four.achieved_rps),
                fmt_ms(four.p50_ms),
                fmt_ms(four.p99_ms),
                format!("{:.2}", four.mean_batch_size),
            ],
        ],
    );
    println!("scaling 4w/1w: {scaling:.2}x");

    // --- 4. Open-loop sweep: the latency-vs-throughput curve at 4 workers.
    println!("--- open-loop saturation sweep (4 workers) ---");
    let curve = sweep(&model, &config(4, 4), &samples, &rates, sweep_requests)?;
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.offered_rps),
                format!("{:.0}", p.achieved_rps),
                fmt_ms(p.p50_ms),
                fmt_ms(p.p99_ms),
                fmt_ms(p.p999_ms),
                format!("{}", p.shed),
                format!("{:.2}", p.mean_batch_size),
            ]
        })
        .collect();
    print_table(
        "latency vs offered load",
        &["offered rps", "achieved rps", "p50", "p99", "p999", "shed", "mean batch"],
        &rows,
    );

    // --- 5. SLA point: p99 at the committed offered rate.
    let sla = sweep(&model, &config(4, 4), &samples, &[sla_rps], sweep_requests)?;
    let sla = &sla[0];
    println!(
        "p99 at {:.0} offered rps: {} (achieved {:.0} rps, {} shed)",
        sla_rps,
        fmt_ms(sla.p99_ms),
        sla.achieved_rps,
        sla.shed
    );

    // --- 6. Optionally append everything to a BENCH_ci.json-style report.
    if let Some(out_path) = std::env::args().nth(1) {
        let path = std::path::Path::new(&out_path);
        let mut bench = BenchReport::load_or_default(path)?;
        bench.summarize("serve_rps_1w", one.achieved_rps);
        bench.summarize("serve_rps_4w", four.achieved_rps);
        bench.summarize("serve_scaling_4w_over_1w", scaling);
        for p in &curve {
            let tag = format!("serve_curve_w4_r{:.0}", p.offered_rps);
            bench.summarize(&format!("{tag}_achieved_rps"), p.achieved_rps);
            bench.summarize(&format!("{tag}_p50_ms"), p.p50_ms);
            bench.summarize(&format!("{tag}_p99_ms"), p.p99_ms);
            bench.summarize(&format!("{tag}_p999_ms"), p.p999_ms);
            bench.summarize(&format!("{tag}_shed"), p.shed as f64);
        }
        bench.summarize("serve_p99_ms_at_sla", sla.p99_ms);
        std::fs::write(path, bench.to_json()?)?;
        println!("appended load-harness stats to {out_path}");
    }
    Ok(())
}
