//! End-to-end serving demo: train a small zoo model, checkpoint it, freeze
//! it (BN folded into the weights), and serve a stream of synthetic
//! single-sample requests through the dynamic micro-batching engine,
//! printing throughput and p50/p99 latency.
//!
//! Run with `cargo run --release --example serve_synthetic [-- REPORT.json]`.
//! When a report path is given, the serving numbers are appended to that
//! `BENCH_ci.json`-style file through the bench crate's emitter (this is
//! what the CI serve-smoke step does under `BNFF_THREADS` 1 and 4).
//!
//! Environment knobs: `BNFF_SERVE_REQUESTS` (default 64),
//! `BNFF_SERVE_WORKERS` (default 2), `BNFF_SERVE_MAX_BATCH` (default 8),
//! `BNFF_SERVE_TRAIN_STEPS` (default 10).

use bnff::core::{BnffOptimizer, FusionLevel};
use bnff::models::densenet_cifar;
use bnff::serve::{BatchingConfig, ServeEngine};
use bnff::tensor::{Shape, Tensor};
use bnff::train::checkpoint::Checkpoint;
use bnff::train::data::SyntheticDataset;
use bnff::train::{TrainConfig, Trainer};
use bnff_bench::BenchReport;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = 8;
    let classes = 5;
    let requests = env_usize("BNFF_SERVE_REQUESTS", 64);
    let workers = env_usize("BNFF_SERVE_WORKERS", 2);
    let max_batch = env_usize("BNFF_SERVE_MAX_BATCH", 8);
    let steps = env_usize("BNFF_SERVE_TRAIN_STEPS", 10);

    // --- 1. Train a small zoo model (BNFF-restructured DenseNet-CIFAR).
    let baseline = densenet_cifar(batch, 8, 2, classes)?;
    let graph = BnffOptimizer::new(FusionLevel::Bnff).apply(&baseline)?;
    let dataset = SyntheticDataset::new(classes, 3, 32, 0.05, 1234)?;
    let config = TrainConfig {
        batch_size: batch,
        steps,
        learning_rate: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 7,
    };
    let mut trainer = Trainer::new(graph, dataset.clone(), config.clone())?;
    println!("--- training {steps} steps ---");
    for step in 0..config.steps {
        let metrics = trainer.step(step)?;
        if step % 5 == 0 || step + 1 == config.steps {
            println!(
                "step {:3}: loss {:.4}, accuracy {:.1}%",
                metrics.step,
                metrics.loss,
                metrics.accuracy * 100.0
            );
        }
    }

    // --- 2. Checkpoint to disk and load it back — training and serving
    // stay separable processes.
    let ckpt_path =
        std::env::temp_dir().join(format!("bnff-serve-demo-{}.json", std::process::id()));
    Checkpoint::capture(trainer.executor()).save(&ckpt_path)?;
    let checkpoint = Checkpoint::load(&ckpt_path)?;
    println!(
        "--- checkpoint written to {} ({} params) ---",
        ckpt_path.display(),
        checkpoint.params.scalar_count()
    );

    // --- 3. Freeze: BN folds into the conv weights.
    let model = ServeEngine::builder().checkpoint(&checkpoint).build_model()?;
    println!(
        "--- frozen: {} nodes (training graph had {}), {} frozen params ---",
        model.template().node_count(),
        checkpoint.graph.node_count(),
        model.params().scalar_count()
    );
    std::fs::remove_file(&ckpt_path).ok();

    // --- 4. Serve a stream of single-sample requests.
    let sample_shape = model.sample_shape()?;
    let mut dims = vec![1usize];
    dims.extend_from_slice(sample_shape.dims());
    let volume = sample_shape.volume();
    let samples: Vec<Tensor> = (0..requests)
        .map(|i| {
            let (data, _labels) = dataset.batch(1, 50_000 + i as u64)?;
            Tensor::from_vec(Shape::new(dims.clone()), data.as_slice()[..volume].to_vec())
                .map_err(Into::into)
        })
        .collect::<Result<_, Box<dyn std::error::Error>>>()?;

    let engine = ServeEngine::builder()
        .model(model)
        .config(BatchingConfig {
            max_batch,
            max_wait: Duration::from_millis(2),
            workers,
            executor_cache: 4,
            ..BatchingConfig::default()
        })
        .start()?;
    let started = Instant::now();
    let receivers: Vec<_> =
        samples.into_iter().map(|s| engine.submit(s)).collect::<Result<_, _>>()?;
    let mut first_scores: Option<Vec<f32>> = None;
    for rx in receivers {
        let completion = rx.recv()??;
        first_scores.get_or_insert_with(|| completion.scores.as_slice().to_vec());
    }
    let wall = started.elapsed();
    let report = engine.shutdown().report(wall);
    println!(
        "--- served {} requests in {:.1} ms over {} batches (mean batch {:.2}) ---",
        report.requests,
        report.wall_seconds * 1e3,
        report.batches,
        report.mean_batch_size
    );
    println!(
        "throughput {:.0} req/s · p50 {:.3} ms · p99 {:.3} ms",
        report.throughput_rps, report.p50_ms, report.p99_ms
    );
    if let Some(scores) = first_scores {
        println!("first request's logits: {scores:?}");
    }

    // --- 5. Optionally append the numbers to a BENCH_ci.json-style report.
    if let Some(out_path) = std::env::args().nth(1) {
        let path = std::path::Path::new(&out_path);
        let threads = std::env::var("BNFF_THREADS").unwrap_or_else(|_| "auto".to_string());
        let tag = format!("serve_synthetic_{threads}t_w{workers}_b{max_batch}");
        let mut bench = BenchReport::load_or_default(path)?;
        bench.summarize(&format!("{tag}_throughput_rps"), report.throughput_rps);
        bench.summarize(&format!("{tag}_p50_ms"), report.p50_ms);
        bench.summarize(&format!("{tag}_p99_ms"), report.p99_ms);
        bench.summarize(&format!("{tag}_mean_batch"), report.mean_batch_size);
        std::fs::write(path, bench.to_json()?)?;
        println!("appended serving stats to {out_path}");
    }
    Ok(())
}
