//! Trains a tiny model and exports it in every deployable form: binary
//! artifact (`model.bnff`), JSON checkpoint (`model.json`), and a ready
//! `request.json` body for `POST /v1/infer` — the input set for the CI
//! HTTP smoke test:
//!
//! ```text
//! cargo run --release --example export_artifact -- OUTDIR
//! cargo run --release --bin bnff_serve -- --model OUTDIR/model.bnff &
//! curl -d @OUTDIR/request.json http://127.0.0.1:8080/v1/infer
//! ```
//!
//! Environment knobs: `BNFF_EXPORT_TRAIN_STEPS` (default 6).

use bnff::core::{BnffOptimizer, FusionLevel};
use bnff::models::resnet_cifar;
use bnff::serve::ServeEngine;
use bnff::tensor::init::Initializer;
use bnff::train::checkpoint::Checkpoint;
use bnff::train::data::SyntheticDataset;
use bnff::train::{TrainConfig, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let outdir = std::env::args().nth(1).unwrap_or_else(|| "tmp_export".to_string());
    let outdir = std::path::PathBuf::from(outdir);
    std::fs::create_dir_all(&outdir)?;
    let steps =
        std::env::var("BNFF_EXPORT_TRAIN_STEPS").ok().and_then(|v| v.parse().ok()).unwrap_or(6);

    // --- 1. Train a small BNFF-restructured ResNet on synthetic data.
    let batch = 4;
    let classes = 4;
    let baseline = resnet_cifar(batch, 1, classes)?;
    let graph = BnffOptimizer::new(FusionLevel::Bnff).apply(&baseline)?;
    let dataset = SyntheticDataset::new(classes, 3, 32, 0.05, 99)?;
    let config = TrainConfig {
        batch_size: batch,
        steps,
        learning_rate: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
        seed: 17,
    };
    let mut trainer = Trainer::new(graph, dataset, config.clone())?;
    for step in 0..config.steps {
        let metrics = trainer.step(step)?;
        println!("step {:2}: loss {:.4}", metrics.step, metrics.loss);
    }

    // --- 2. Export both model formats from one checkpoint.
    let checkpoint = Checkpoint::capture(trainer.executor());
    let artifact_path = outdir.join("model.bnff");
    let json_path = outdir.join("model.json");
    checkpoint.write_artifact(&artifact_path)?;
    checkpoint.save(&json_path)?;
    let artifact_bytes = std::fs::metadata(&artifact_path)?.len();
    let json_bytes = std::fs::metadata(&json_path)?.len();
    println!(
        "wrote {} ({artifact_bytes} B) and {} ({json_bytes} B)",
        artifact_path.display(),
        json_path.display()
    );

    // --- 3. Emit a valid inference request body for the served model.
    let model = ServeEngine::builder().model_file(&artifact_path).build_model()?;
    let sample_shape = model.sample_shape()?;
    let mut init = Initializer::seeded(5);
    let sample = init.uniform(sample_shape, -1.0, 1.0);
    let body = format!("{{\"sample\":{}}}", serde_json::to_string(&sample.as_slice().to_vec())?);
    let request_path = outdir.join("request.json");
    std::fs::write(&request_path, &body)?;
    println!("wrote {} ({} B)", request_path.display(), body.len());

    // --- 4. Prove the artifact round-trips: load it back and infer.
    let mut dims = vec![1usize];
    dims.extend_from_slice(sample.shape().dims());
    let batched =
        bnff::tensor::Tensor::from_vec(bnff::tensor::Shape::new(dims), sample.as_slice().to_vec())?;
    let scores = model.executor(1)?.infer(&batched)?;
    println!("sanity scores: {:?}", scores.as_slice());
    Ok(())
}
